// The observability layer's contracts: Histogram64 percentile edges, the
// commutative registry merge, the pinned FNV fingerprint construction, and
// the determinism guarantee that tracing never perturbs a world — fleet and
// transport fingerprints are bit-identical with tracing on or off, at any
// domain count, and the exported trace bytes are invariant under sharding.
#include <algorithm>
#include <numeric>
#include <random>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/fingerprint.hpp"
#include "common/stats.hpp"
#include "gtest/gtest.h"
#include "obs/bridge.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workload/scenario.hpp"
#include "workload/session_fleet.hpp"

namespace emergence {
namespace {

// -- Histogram64 percentile edge cases ---------------------------------------

TEST(Histogram64, EmptyHistogramReportsZeros) {
  Histogram64 h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.percentile(0.0), 0);
  EXPECT_EQ(h.percentile(0.5), 0);
  EXPECT_EQ(h.percentile(1.0), 0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram64, SingleBucketEveryPercentileIsThatKey) {
  Histogram64 h;
  h.add(42, 1000);
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.percentile(q), 42) << "q=" << q;
  }
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_EQ(h.mean(), 42.0);
}

TEST(Histogram64, SaturatedTopBucketDominatesHighPercentiles) {
  // One sample each at 1..9, then a top bucket holding ~all of the mass:
  // every percentile above the tiny head must land on the top key, and
  // q=1.0 must too (ceil(q*count) == count).
  Histogram64 h;
  for (std::int64_t k = 1; k <= 9; ++k) h.add(k);
  h.add(1000000, 991);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.percentile(0.009), 9);
  EXPECT_EQ(h.percentile(0.01), 1000000);
  EXPECT_EQ(h.percentile(0.5), 1000000);
  EXPECT_EQ(h.percentile(0.99), 1000000);
  EXPECT_EQ(h.percentile(1.0), 1000000);
  EXPECT_EQ(h.max(), 1000000);
  // Out-of-range q clamps instead of reading past the bins.
  EXPECT_EQ(h.percentile(-1.0), h.percentile(0.0));
  EXPECT_EQ(h.percentile(2.0), h.percentile(1.0));
}

// -- registry merge commutativity --------------------------------------------

/// Builds the i-th "domain shard" registry of a synthetic run: overlapping
/// counter/gauge/histogram series with shard-dependent values.
obs::MetricsRegistry shard_registry(std::size_t i) {
  obs::MetricsRegistry r;
  r.counter("emergence_test_events_total") += 10 * (i + 1);
  r.counter("emergence_test_drops_total",
            {{"domain", std::to_string(i % 2)}}) += i;
  r.gauge("emergence_test_peak") = static_cast<double>((i * 7) % 5);
  auto& h = r.histogram("emergence_test_latency_us");
  h.add(static_cast<std::int64_t>(100 * i), i + 1);
  h.add(50, 2);
  return r;
}

TEST(MetricsRegistry, MergeIsCommutativeUnderPermutedDomainOrders) {
  constexpr std::size_t kShards = 6;
  std::vector<std::size_t> order(kShards);
  std::iota(order.begin(), order.end(), 0u);

  obs::MetricsRegistry reference;
  for (std::size_t i : order) reference.merge(shard_registry(i));
  ASSERT_FALSE(reference.empty());

  std::mt19937 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::shuffle(order.begin(), order.end(), rng);
    obs::MetricsRegistry permuted;
    for (std::size_t i : order) permuted.merge(shard_registry(i));
    EXPECT_EQ(permuted.fingerprint(), reference.fingerprint());
    EXPECT_EQ(permuted.counters(), reference.counters());
    EXPECT_EQ(permuted.gauges(), reference.gauges());
  }
}

TEST(MetricsRegistry, MergeRules) {
  obs::MetricsRegistry a;
  a.counter("emergence_c") = 3;
  a.gauge("emergence_g") = 2.5;
  a.histogram("emergence_h").add(1);
  obs::MetricsRegistry b;
  b.counter("emergence_c") = 4;
  b.gauge("emergence_g") = 1.5;
  b.histogram("emergence_h").add(9);
  a.merge(b);
  EXPECT_EQ(a.counters().at("emergence_c"), 7u);   // counters sum
  EXPECT_EQ(a.gauges().at("emergence_g"), 2.5);    // gauges keep the max
  EXPECT_EQ(a.histograms().at("emergence_h").count(), 2u);  // exact merge
}

TEST(MetricsRegistry, SeriesKeyValidatesAndSortsLabels) {
  EXPECT_EQ(obs::series_key("emergence_x", {}), "emergence_x");
  EXPECT_EQ(obs::series_key("emergence_x", {{"b", "2"}, {"a", "1"}}),
            "emergence_x{a=\"1\",b=\"2\"}");
  EXPECT_THROW(obs::series_key("bad name", {}), Error);
  EXPECT_THROW(obs::series_key("1leading", {}), Error);
}

TEST(MetricsRegistry, FlattenExpandsHistogramsDeterministically) {
  obs::MetricsRegistry r;
  r.counter("emergence_c") = 2;
  r.histogram("emergence_h").add(10, 4);
  const auto rows = r.flatten();
  ASSERT_EQ(rows.size(), 7u);  // 1 counter + 6 histogram pseudo-series
  EXPECT_EQ(rows[0].first, "emergence_c");
  EXPECT_EQ(rows[0].second, 2.0);
  EXPECT_EQ(rows[1].first, "emergence_h_count");
  EXPECT_EQ(rows[1].second, 4.0);
}

TEST(MetricsRegistry, PrometheusAndJsonSinksRender) {
  obs::MetricsRegistry r;
  r.counter("emergence_c", {{"k", "v"}}) = 5;
  r.gauge("emergence_g") = 1.25;
  r.histogram("emergence_h").add(3);
  const std::string prom = r.to_prometheus();
  EXPECT_NE(prom.find("# TYPE emergence_c counter"), std::string::npos);
  EXPECT_NE(prom.find("emergence_c{k=\"v\"} 5"), std::string::npos);
  EXPECT_NE(prom.find("emergence_g 1.25"), std::string::npos);
  std::ostringstream js;
  r.write_json(js);
  EXPECT_NE(js.str().find("\"counters\""), std::string::npos);
  EXPECT_NE(js.str().find("\"emergence_h\""), std::string::npos);
}

// -- the pinned fingerprint construction -------------------------------------

TEST(FingerprintGolden, PinnedFnv1aConstruction) {
  // Golden values for the shared FNV-1a digest (common/fingerprint.hpp).
  // These pin the exact construction every fingerprint in the repository
  // derives from: if one of them moves, every recorded BENCH fingerprint
  // and CI bit-identity gate silently changes meaning.
  EXPECT_EQ(kFnvOffset, 0xcbf29ce484222325ULL);
  EXPECT_EQ(kFnvPrime, 0x100000001b3ULL);
  EXPECT_EQ(Fingerprint().value(), kFnvOffset);  // empty sequence
  // fnv1a over the little-endian bytes, computed once and pinned.
  EXPECT_EQ(Fingerprint().mix(0).value(), 0xa8c7f832281a39c5ULL);
  EXPECT_EQ(Fingerprint().mix(1).value(), 0x89cd31291d2aefa4ULL);
  EXPECT_EQ(Fingerprint().mix(0xdeadbeef).value(), 0x7513fc78a110e05bULL);
  EXPECT_EQ(Fingerprint().mix(1).mix(2).value(), 0x7717980363c8e066ULL);
  // Order matters (it is a digest over a sequence, not a set).
  EXPECT_NE(Fingerprint().mix(1).mix(2).value(),
            Fingerprint().mix(2).mix(1).value());
}

TEST(FingerprintGolden, RegistryFingerprintIsOrderIndependent) {
  obs::MetricsRegistry a;
  a.counter("emergence_one") = 1;
  a.counter("emergence_two") = 2;
  obs::MetricsRegistry b;
  b.counter("emergence_two") = 2;
  b.counter("emergence_one") = 1;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.counter("emergence_two") = 3;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// -- sampling determinism ----------------------------------------------------

TEST(Tracer, SamplingIsPureAndRateMonotone) {
  obs::Tracer all(99, 1.0);
  obs::Tracer none(99, 0.0);
  obs::Tracer half(99, 0.5);
  obs::Tracer half_again(99, 0.5);
  std::size_t admitted = 0;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    EXPECT_TRUE(all.sample(key));
    EXPECT_FALSE(none.sample(key));
    const bool h = half.sample(key);
    EXPECT_EQ(h, half_again.sample(key));  // pure in (seed, rate, key)
    if (h) ++admitted;
    // Shards answer identically to their owner.
  }
  EXPECT_GT(admitted, 350u);
  EXPECT_LT(admitted, 650u);
}

TEST(Tracer, ShardSampleMatchesOwner) {
  obs::Tracer tracer(1234, 0.5);
  obs::TraceShard* shard = tracer.new_shard();
  for (std::uint64_t key = 0; key < 200; ++key) {
    EXPECT_EQ(shard->sample(key), tracer.sample(key));
  }
}

TEST(Tracer, CanonicalExportIsShardingInvariant) {
  auto event = [](std::int64_t ts, const char* name) {
    obs::TraceEvent e;
    e.ts_us = ts;
    e.name = name;
    e.cat = "test";
    return e;
  };
  // The same multiset of events, recorded onto different shard layouts.
  obs::Tracer one(7, 1.0);
  obs::TraceShard* s = one.new_shard();
  s->record(event(30, "c"));
  s->record(event(10, "a"));
  s->record(event(20, "b"));
  s->record(event(10, "a"));  // duplicate content must survive

  obs::Tracer many(7, 1.0);
  many.new_shard()->record(event(10, "a"));
  many.new_shard()->record(event(30, "c"));
  obs::TraceShard* last = many.new_shard();
  last->record(event(10, "a"));
  last->record(event(20, "b"));

  std::ostringstream os_one, os_many;
  one.write_chrome_trace(os_one);
  many.write_chrome_trace(os_many);
  EXPECT_EQ(os_one.str(), os_many.str());
  EXPECT_EQ(one.event_count(), 4u);
  ASSERT_EQ(one.sorted_events().size(), 4u);
  EXPECT_EQ(one.sorted_events()[0].name, "a");
  EXPECT_EQ(one.sorted_events()[3].name, "c");
}

TEST(Tracer, DrainJsonlClearsBuffers) {
  obs::Tracer tracer(7, 1.0);
  obs::TraceShard* shard = tracer.new_shard();
  obs::TraceEvent e;
  e.name = "x";
  e.cat = "test";
  shard->record(e);
  std::ostringstream os;
  tracer.drain_jsonl(os);
  EXPECT_NE(os.str().find("\"x\""), std::string::npos);
  EXPECT_EQ(tracer.event_count(), 0u);
  std::ostringstream again;
  tracer.drain_jsonl(again);
  EXPECT_TRUE(again.str().empty());
}

// -- tracing never perturbs the world ----------------------------------------

workload::ScenarioSpec traced_scenario(std::size_t domains) {
  workload::ScenarioSpec s = workload::find_scenario("lossy-links");
  s.population = 200;
  s.sessions = 96;
  s.worlds = 2;
  s.domains = domains;
  return s;
}

TEST(TraceDeterminism, FingerprintsIdenticalTraceOnOrOffAtAnyDomainCount) {
  core::SweepRunner sweeps(core::SweepOptions{4, 64});

  const workload::FleetTally off1 =
      workload::run_scenario(sweeps, traced_scenario(1));
  obs::Tracer trace1(traced_scenario(1).seed, 1.0);
  const workload::FleetTally on1 =
      workload::run_scenario(sweeps, traced_scenario(1), nullptr, &trace1);

  const workload::FleetTally off8 =
      workload::run_scenario(sweeps, traced_scenario(8));
  obs::Tracer trace8(traced_scenario(8).seed, 1.0);
  const workload::FleetTally on8 =
      workload::run_scenario(sweeps, traced_scenario(8), nullptr, &trace8);

  // Tracing must not consume a single draw from any world rng stream.
  EXPECT_EQ(off1.fingerprint(), on1.fingerprint());
  EXPECT_EQ(off1.transport.fingerprint(), on1.transport.fingerprint());
  EXPECT_EQ(off8.fingerprint(), on8.fingerprint());
  EXPECT_EQ(off8.transport.fingerprint(), on8.transport.fingerprint());
  EXPECT_EQ(off1.fingerprint(), off8.fingerprint());
  EXPECT_EQ(off1.transport.fingerprint(), off8.transport.fingerprint());

  // And the canonical trace bytes are invariant under domain sharding.
  ASSERT_GT(trace1.event_count(), 0u);
  std::ostringstream t1, t8;
  trace1.write_chrome_trace(t1);
  trace8.write_chrome_trace(t8);
  EXPECT_EQ(t1.str(), t8.str());
}

TEST(TraceDeterminism, ChromeTraceShapeIsLoadable) {
  core::SweepRunner sweeps(core::SweepOptions{2, 64});
  obs::Tracer tracer(traced_scenario(1).seed, 0.25);
  (void)workload::run_scenario(sweeps, traced_scenario(1), nullptr, &tracer);
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string json = os.str();
  // Cheap shape probes; tools/check_obs.py does the full JSON validation.
  EXPECT_EQ(json.rfind("{\"traceEvents\":", 0), 0u);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"session\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"transport\""), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST(BridgePublish, FleetTallyLandsOnTheRegistry) {
  core::SweepRunner sweeps(core::SweepOptions{2, 64});
  const workload::FleetTally tally =
      workload::run_scenario(sweeps, traced_scenario(1));
  obs::MetricsRegistry registry;
  obs::publish(registry, tally, {{"scenario", "lossy-links"}});
  EXPECT_EQ(registry.counters().at(
                "emergence_fleet_sessions_started_total{scenario=\"lossy-links\"}"),
            tally.sessions_started);
  EXPECT_FALSE(
      registry.histograms()
          .at("emergence_fleet_delivery_latency_us{scenario=\"lossy-links\"}")
          .empty());
  // Publishing the same tally from two "shards" then merging matches a
  // single publish of the merged counts doubled.
  obs::MetricsRegistry a, b;
  obs::publish(a, tally);
  obs::publish(b, tally);
  a.merge(b);
  EXPECT_EQ(a.counters().at("emergence_fleet_sessions_started_total"),
            2 * tally.sessions_started);
}

}  // namespace
}  // namespace emergence

// Unit tests for the common utilities: bytes, hex, serialization, RNG,
// binomial math and statistics accumulators.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "common/binomial.hpp"
#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/hex.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"
#include "common/stats.hpp"

namespace emergence {
namespace {

// -- bytes --------------------------------------------------------------------

TEST(Bytes, RoundTripThroughString) {
  const Bytes b = bytes_of("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(string_of(b), "hello");
}

TEST(Bytes, ConcatJoinsBuffers) {
  const Bytes a = bytes_of("ab");
  const Bytes b = bytes_of("cd");
  EXPECT_EQ(string_of(concat(a, b)), "abcd");
}

TEST(Bytes, ConcatWithEmpty) {
  const Bytes a = bytes_of("ab");
  const Bytes empty;
  EXPECT_EQ(string_of(concat(a, empty)), "ab");
  EXPECT_EQ(string_of(concat(empty, a)), "ab");
}

TEST(Bytes, AppendExtendsInPlace) {
  Bytes a = bytes_of("ab");
  append(a, bytes_of("cd"));
  EXPECT_EQ(string_of(a), "abcd");
}

TEST(Bytes, ConstantTimeEqualAgreesWithEquality) {
  EXPECT_TRUE(constant_time_equal(bytes_of("same"), bytes_of("same")));
  EXPECT_FALSE(constant_time_equal(bytes_of("same"), bytes_of("sbme")));
  EXPECT_FALSE(constant_time_equal(bytes_of("same"), bytes_of("samee")));
  EXPECT_TRUE(constant_time_equal(Bytes{}, Bytes{}));
}

TEST(Bytes, XorIntoFlipsBits) {
  Bytes a = {0xff, 0x00, 0xaa};
  const Bytes b = {0x0f, 0xf0, 0xaa};
  xor_into(a, b);
  EXPECT_EQ(a, (Bytes{0xf0, 0xf0, 0x00}));
}

TEST(Bytes, XorIntoSizeMismatchThrows) {
  Bytes a = {1, 2};
  const Bytes b = {1};
  EXPECT_THROW(xor_into(a, b), PreconditionError);
}

// -- hex ----------------------------------------------------------------------

TEST(Hex, EncodesLowercase) {
  EXPECT_EQ(to_hex(Bytes{0x00, 0xff, 0x1a}), "00ff1a");
}

TEST(Hex, DecodeIsInverse) {
  const Bytes original = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(from_hex(to_hex(original)), original);
}

TEST(Hex, DecodeAcceptsUppercase) {
  EXPECT_EQ(from_hex("DEADBEEF"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Hex, OddLengthThrows) { EXPECT_THROW(from_hex("abc"), CodecError); }

TEST(Hex, InvalidDigitThrows) { EXPECT_THROW(from_hex("zz"), CodecError); }

TEST(Hex, EmptyIsEmpty) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

// -- serialization ------------------------------------------------------------

TEST(Serial, PrimitivesRoundTrip) {
  BinaryWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.str("text");
  w.blob(Bytes{9, 9, 9});

  BinaryReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.str(), "text");
  EXPECT_EQ(r.blob(), (Bytes{9, 9, 9}));
  EXPECT_TRUE(r.done());
}

TEST(Serial, LittleEndianLayout) {
  BinaryWriter w;
  w.u32(0x01020304);
  EXPECT_EQ(w.bytes(), (Bytes{0x04, 0x03, 0x02, 0x01}));
}

TEST(Serial, TruncatedReadThrows) {
  BinaryWriter w;
  w.u16(7);
  BinaryReader r(w.bytes());
  EXPECT_THROW(r.u32(), CodecError);
}

TEST(Serial, TruncatedBlobThrows) {
  BinaryWriter w;
  w.u32(100);  // claims 100 bytes follow, none do
  BinaryReader r(w.bytes());
  EXPECT_THROW(r.blob(), CodecError);
}

TEST(Serial, ExpectDoneDetectsTrailingBytes) {
  BinaryWriter w;
  w.u8(1);
  w.u8(2);
  BinaryReader r(w.bytes());
  r.u8();
  EXPECT_THROW(r.expect_done(), CodecError);
  r.u8();
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Serial, EmptyBlobRoundTrips) {
  BinaryWriter w;
  w.blob(Bytes{});
  BinaryReader r(w.bytes());
  EXPECT_TRUE(r.blob().empty());
}

// -- rng ----------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.bits(), b.bits());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.bits() == b.bits());
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformEmptyRangeThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(5, 4), PreconditionError);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequencyNearP) {
  Rng rng(7);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(11);
  double sum = 0.0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / trials, 5.0, 0.15);
}

TEST(Rng, ExponentialRequiresPositiveMean) {
  Rng rng(11);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(3);
  const auto sample = rng.sample_without_replacement(100, 40);
  EXPECT_EQ(sample.size(), 40u);
  const std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 40u);
  for (auto v : sample) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleWholePopulation) {
  Rng rng(3);
  const auto sample = rng.sample_without_replacement(10, 10);
  const std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleTooManyThrows) {
  Rng rng(3);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), PreconditionError);
}

TEST(Rng, SampleIsApproximatelyUniform) {
  Rng rng(5);
  std::vector<int> counts(20, 0);
  for (int trial = 0; trial < 4000; ++trial) {
    for (auto v : rng.sample_without_replacement(20, 5)) ++counts[v];
  }
  // Each element is chosen with probability 5/20 = 0.25 per trial.
  for (int c : counts) EXPECT_NEAR(c / 4000.0, 0.25, 0.04);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  Rng b(42);
  Rng child_b = b.fork();
  // Same parent seed -> same child stream.
  for (int i = 0; i < 16; ++i) EXPECT_EQ(child.bits(), child_b.bits());
}

TEST(Rng, ForkByStreamIdIsDeterministic) {
  const Rng a(42);
  const Rng b(42);
  Rng child_a = a.fork(7);
  Rng child_b = b.fork(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(child_a.bits(), child_b.bits());
}

TEST(Rng, ForkByStreamIdIgnoresEngineState) {
  // Counter-based: the child stream is a function of (seed, stream_id) only,
  // so drawing from the parent first must not change it. This is what lets
  // sweep shards fork run i from any thread in any order.
  Rng drained(42);
  for (int i = 0; i < 1000; ++i) drained.bits();
  const Rng fresh(42);
  Rng child_drained = drained.fork(3);
  Rng child_fresh = fresh.fork(3);
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(child_drained.bits(), child_fresh.bits());
}

TEST(Rng, ForkStreamsDifferFromParentAndEachOther) {
  const Rng parent(0x5eed);
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  Rng p(0x5eed);
  int a_eq_b = 0, a_eq_p = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t va = a.bits(), vb = b.bits(), vp = p.bits();
    a_eq_b += (va == vb);
    a_eq_p += (va == vp);
  }
  EXPECT_EQ(a_eq_b, 0);
  EXPECT_EQ(a_eq_p, 0);
}

TEST(Rng, ForkStreamsNoPrefixCollisionsAcross10kStreams) {
  // The first 64 draws of 10000 forked streams must all be distinct: any
  // repeated value across streams would hint at correlated child seeds.
  // (640k draws from a 2^64 space collide with probability ~1e-8; the seed
  // is fixed, so this is deterministic.)
  const Rng parent(0x5eed);
  std::set<std::uint64_t> seen;
  for (std::uint64_t stream = 0; stream < 10000; ++stream) {
    Rng child = parent.fork(stream);
    for (int i = 0; i < 64; ++i) {
      EXPECT_TRUE(seen.insert(child.bits()).second)
          << "collision in stream " << stream << " draw " << i;
    }
  }
}

TEST(Rng, ForkStreamsFirstDrawUniform) {
  // Chi-square sanity bound on the first uniform real of 10k streams over
  // 20 equiprobable bins: E = 500 per bin, df = 19. 60 is far beyond the
  // 99.9th percentile (~43.8) — a generous bound that still catches any
  // gross seeding bias.
  const Rng parent(123);
  std::vector<int> bins(20, 0);
  const int streams = 10000;
  for (int stream = 0; stream < streams; ++stream) {
    Rng child = parent.fork(static_cast<std::uint64_t>(stream));
    const double u = child.real();
    ++bins[std::min(static_cast<std::size_t>(u * 20.0), std::size_t{19})];
  }
  const double expected = streams / 20.0;
  double chi2 = 0.0;
  for (int count : bins) {
    const double d = count - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 60.0);
}

TEST(Rng, ForkStreamsChanceFrequencyNearP) {
  // Across streams (one Bernoulli draw per stream) the hit rate must track
  // p — independence across forked streams, not just within one.
  const Rng parent(99);
  int hits = 0;
  const int streams = 20000;
  for (int stream = 0; stream < streams; ++stream) {
    Rng child = parent.fork(static_cast<std::uint64_t>(stream));
    hits += child.chance(0.3);
  }
  EXPECT_NEAR(static_cast<double>(hits) / streams, 0.3, 0.02);
}

TEST(Rng, SeedAccessorReturnsConstructionSeed) {
  EXPECT_EQ(Rng(42).seed(), 42u);
  EXPECT_EQ(Rng(7).fork(1).seed(), Rng(7).fork(1).seed());
}

TEST(Rng, BytesLengthAndDeterminism) {
  Rng a(9), b(9);
  EXPECT_EQ(a.bytes(33).size(), 33u);
  EXPECT_EQ(Rng(9).bytes(16), Rng(9).bytes(16));
  (void)b;
}

// -- binomial -----------------------------------------------------------------

double exact_tail(int n, int m, double p) {
  // Direct summation with exact binomial coefficients (small n only).
  double sum = 0.0;
  for (int k = m; k <= n; ++k) {
    double coeff = 1.0;
    for (int i = 0; i < k; ++i)
      coeff = coeff * static_cast<double>(n - i) / static_cast<double>(i + 1);
    sum += coeff * std::pow(p, k) * std::pow(1 - p, n - k);
  }
  return sum;
}

TEST(Binomial, LogChooseKnownValues) {
  EXPECT_NEAR(std::exp(log_choose(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(10, 5)), 252.0, 1e-6);
  EXPECT_NEAR(std::exp(log_choose(7, 0)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(log_choose(7, 7)), 1.0, 1e-12);
}

TEST(Binomial, PmfSumsToOne) {
  for (double p : {0.1, 0.42, 0.9}) {
    double sum = 0.0;
    for (int k = 0; k <= 30; ++k) sum += binom_pmf(30, k, p);
    EXPECT_NEAR(sum, 1.0, 1e-10) << "p=" << p;
  }
}

TEST(Binomial, TailMatchesExactSmallN) {
  for (int n : {1, 5, 12}) {
    for (double p : {0.05, 0.3, 0.5, 0.8}) {
      for (int m = 0; m <= n; ++m) {
        EXPECT_NEAR(binom_tail_ge(n, m, p), exact_tail(n, m, p), 1e-9)
            << "n=" << n << " m=" << m << " p=" << p;
      }
    }
  }
}

TEST(Binomial, TailBoundaryCases) {
  EXPECT_DOUBLE_EQ(binom_tail_ge(10, 0, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(binom_tail_ge(10, 11, 0.3), 0.0);
  EXPECT_DOUBLE_EQ(binom_tail_ge(10, 5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binom_tail_ge(10, 5, 1.0), 1.0);
}

TEST(Binomial, TableMatchesPointwiseTail) {
  const std::size_t n = 200;
  const double p = 0.23;
  const auto table = binom_tail_table(n, p);
  ASSERT_EQ(table.size(), n + 2);
  for (std::size_t m = 0; m <= n; m += 13) {
    EXPECT_NEAR(table[m], binom_tail_ge(n, m, p), 1e-9) << "m=" << m;
  }
  EXPECT_DOUBLE_EQ(table[n + 1], 0.0);
}

TEST(Binomial, TableLargeNIsMonotone) {
  const auto table = binom_tail_table(5000, 0.31);
  for (std::size_t m = 0; m + 1 < table.size(); ++m)
    EXPECT_GE(table[m] + 1e-12, table[m + 1]);
  EXPECT_NEAR(table[0], 1.0, 1e-12);
}

TEST(Binomial, PowHelpers) {
  EXPECT_DOUBLE_EQ(pow_one_minus(0.0, 10), 1.0);
  EXPECT_DOUBLE_EQ(pow_one_minus(1.0, 10), 0.0);
  EXPECT_NEAR(pow_one_minus(0.3, 4), std::pow(0.7, 4), 1e-12);
  EXPECT_DOUBLE_EQ(one_minus_pow_one_minus(0.0, 5), 0.0);
  EXPECT_DOUBLE_EQ(one_minus_pow_one_minus(1.0, 5), 1.0);
  EXPECT_NEAR(one_minus_pow_one_minus(0.2, 3), 1 - std::pow(0.8, 3), 1e-12);
}

TEST(Binomial, PowHelpersStableForTinyX) {
  // 1-(1-x)^k ≈ kx for tiny x; naive arithmetic would lose this entirely.
  const double x = 1e-14;
  EXPECT_NEAR(one_minus_pow_one_minus(x, 100) / (100 * x), 1.0, 1e-6);
}

// -- stats --------------------------------------------------------------------

TEST(Stats, RunningStatMeanVariance) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(Stats, RunningStatEmptyAndSingle) {
  RunningStat s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stderr_mean(), 0.0);
}

TEST(Stats, RateStatCountsSuccesses) {
  RateStat r;
  for (int i = 0; i < 10; ++i) r.add(i < 3);
  EXPECT_EQ(r.trials(), 10u);
  EXPECT_EQ(r.successes(), 3u);
  EXPECT_NEAR(r.rate(), 0.3, 1e-12);
  EXPECT_GT(r.stderr_rate(), 0.0);
}

TEST(Stats, RateStatDegenerateRates) {
  RateStat r;
  EXPECT_EQ(r.rate(), 0.0);
  r.add(true);
  EXPECT_EQ(r.rate(), 1.0);
  EXPECT_EQ(r.stderr_rate(), 0.0);
}

TEST(Stats, RunningStatMergeMatchesBulkAdd) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0,
                                      5.0, 7.0, 9.0, -3.0, 0.5};
  RunningStat bulk;
  for (double v : values) bulk.add(v);

  RunningStat left, right;
  for (std::size_t i = 0; i < 4; ++i) left.add(values[i]);
  for (std::size_t i = 4; i < values.size(); ++i) right.add(values[i]);
  left.merge(right);

  EXPECT_EQ(left.count(), bulk.count());
  EXPECT_NEAR(left.mean(), bulk.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), bulk.variance(), 1e-12);
}

TEST(Stats, RunningStatMergeWithEmptySides) {
  RunningStat filled;
  for (double v : {1.0, 2.0, 3.0}) filled.add(v);
  const double mean = filled.mean();
  const double variance = filled.variance();

  RunningStat empty_into_filled;
  filled.merge(empty_into_filled);  // rhs empty: no-op
  EXPECT_EQ(filled.count(), 3u);
  EXPECT_EQ(filled.mean(), mean);
  EXPECT_EQ(filled.variance(), variance);

  RunningStat empty;
  empty.merge(filled);  // lhs empty: adopts rhs exactly
  EXPECT_EQ(empty.count(), 3u);
  EXPECT_EQ(empty.mean(), mean);
  EXPECT_EQ(empty.variance(), variance);
}

TEST(Stats, RunningStatMergeManyShardsMatchesSerial) {
  // Shard 1000 samples into uneven pieces and merge in order — the sweep
  // engine's aggregation pattern.
  Rng rng(17);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng.real() * 10.0);

  RunningStat serial;
  for (double v : values) serial.add(v);

  RunningStat merged;
  std::size_t at = 0;
  std::size_t shard = 1;
  while (at < values.size()) {
    RunningStat part;
    for (std::size_t i = 0; i < shard && at < values.size(); ++i, ++at)
      part.add(values[at]);
    merged.merge(part);
    shard = shard * 2 + 1;
  }
  EXPECT_EQ(merged.count(), serial.count());
  EXPECT_NEAR(merged.mean(), serial.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), serial.variance(), 1e-10);
}

TEST(Stats, RateStatMergeIsExact) {
  RateStat a, b, serial;
  for (int i = 0; i < 10; ++i) {
    a.add(i % 3 == 0);
    serial.add(i % 3 == 0);
  }
  for (int i = 0; i < 17; ++i) {
    b.add(i % 2 == 0);
    serial.add(i % 2 == 0);
  }
  a.merge(b);
  EXPECT_EQ(a.trials(), serial.trials());
  EXPECT_EQ(a.successes(), serial.successes());
  EXPECT_EQ(a.rate(), serial.rate());            // exact, not NEAR
  EXPECT_EQ(a.stderr_rate(), serial.stderr_rate());
}

TEST(Stats, RateStatMergeWithEmpty) {
  RateStat filled, empty;
  filled.add(true);
  filled.add(false);
  filled.merge(empty);
  EXPECT_EQ(filled.trials(), 2u);
  empty.merge(filled);
  EXPECT_EQ(empty.trials(), 2u);
  EXPECT_EQ(empty.successes(), 1u);
}

TEST(Stats, Histogram64PercentilesAreNearestRank) {
  Histogram64 h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.percentile(0.5), 0);
  for (std::int64_t v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_EQ(h.percentile(0.0), 1);
  EXPECT_EQ(h.percentile(0.5), 50);
  EXPECT_EQ(h.percentile(0.99), 99);
  EXPECT_EQ(h.percentile(1.0), 100);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // Clamped out-of-range quantiles.
  EXPECT_EQ(h.percentile(-1.0), 1);
  EXPECT_EQ(h.percentile(2.0), 100);
}

TEST(Stats, Histogram64WeightedAddAndNegativeKeys) {
  Histogram64 h;
  h.add(-5, 3);
  h.add(7, 1);
  h.add(7, 2);
  h.add(0, 0);  // zero weight is a no-op
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.min(), -5);
  EXPECT_EQ(h.max(), 7);
  EXPECT_EQ(h.percentile(0.5), -5);
  EXPECT_EQ(h.percentile(0.51), 7);
}

TEST(Stats, Histogram64MergeIsExactAndOrderFree) {
  Histogram64 a, b, serial;
  Rng rng(0x60D);
  for (int i = 0; i < 500; ++i) {
    const std::int64_t key = static_cast<std::int64_t>(rng.uniform(0, 40));
    (i % 2 == 0 ? a : b).add(key);
    serial.add(key);
  }
  Histogram64 ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab.bins(), serial.bins());
  EXPECT_EQ(ba.bins(), serial.bins());
  EXPECT_EQ(ab.count(), serial.count());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(ab.percentile(q), serial.percentile(q));
    EXPECT_EQ(ba.percentile(q), serial.percentile(q));
  }
}

}  // namespace
}  // namespace emergence

// Tests for the Chord DHT substrate: identifier arithmetic, ring
// construction, iterative lookup, maintenance under joins/failures,
// replicated storage and the churn driver.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dht/chord_network.hpp"
#include "dht/churn_driver.hpp"
#include "dht/node_id.hpp"
#include "sim/simulator.hpp"

namespace emergence::dht {
namespace {

NodeId id_from_byte(std::uint8_t msb) {
  Bytes raw(kIdBytes, 0);
  raw[0] = msb;
  return NodeId::from_bytes(raw);
}

// -- NodeId ---------------------------------------------------------------------

TEST(NodeId, HashIsDeterministicAndSized) {
  const NodeId a = NodeId::hash_of_text("node-1");
  const NodeId b = NodeId::hash_of_text("node-1");
  const NodeId c = NodeId::hash_of_text("node-2");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.to_hex().size(), 2 * kIdBytes);
}

TEST(NodeId, HexRoundTrip) {
  const NodeId a = NodeId::hash_of_text("x");
  EXPECT_EQ(NodeId::from_hex(a.to_hex()), a);
}

TEST(NodeId, FromBytesValidatesLength) {
  EXPECT_THROW(NodeId::from_bytes(Bytes(19, 0)), PreconditionError);
  EXPECT_THROW(NodeId::from_bytes(Bytes(21, 0)), PreconditionError);
}

TEST(NodeId, AddPowerOfTwoSmall) {
  const NodeId zero = id_from_byte(0);
  const NodeId one = zero.add_power_of_two(0);
  Bytes expected(kIdBytes, 0);
  expected[kIdBytes - 1] = 1;
  EXPECT_EQ(one, NodeId::from_bytes(expected));
}

TEST(NodeId, AddPowerOfTwoCarryPropagates) {
  Bytes raw(kIdBytes, 0);
  raw[kIdBytes - 1] = 0xff;
  const NodeId id = NodeId::from_bytes(raw);
  const NodeId sum = id.add_power_of_two(0);  // 0xff + 1 = 0x100
  Bytes expected(kIdBytes, 0);
  expected[kIdBytes - 2] = 0x01;
  EXPECT_EQ(sum, NodeId::from_bytes(expected));
}

TEST(NodeId, AddPowerOfTwoWrapsAround) {
  Bytes raw(kIdBytes, 0xff);
  const NodeId max = NodeId::from_bytes(raw);
  const NodeId wrapped = max.add_power_of_two(0);
  EXPECT_EQ(wrapped, id_from_byte(0));
}

TEST(NodeId, AddHighestPower) {
  const NodeId zero = id_from_byte(0);
  const NodeId half = zero.add_power_of_two(kIdBits - 1);
  EXPECT_EQ(half, id_from_byte(0x80));
}

TEST(NodeId, AddPowerOutOfRangeThrows) {
  EXPECT_THROW(id_from_byte(0).add_power_of_two(kIdBits), PreconditionError);
}

TEST(NodeId, DistanceLow64) {
  const NodeId a = id_from_byte(0);
  const NodeId b = a.add_power_of_two(10);
  EXPECT_EQ(a.distance_low64(b), 1024u);
  EXPECT_EQ(b.distance_low64(b), 0u);
}

TEST(NodeId, OpenIntervalNoWrap) {
  const NodeId a = id_from_byte(10), b = id_from_byte(20);
  EXPECT_TRUE(in_open_interval(id_from_byte(15), a, b));
  EXPECT_FALSE(in_open_interval(a, a, b));
  EXPECT_FALSE(in_open_interval(b, a, b));
  EXPECT_FALSE(in_open_interval(id_from_byte(25), a, b));
}

TEST(NodeId, OpenIntervalWraps) {
  const NodeId a = id_from_byte(200), b = id_from_byte(10);
  EXPECT_TRUE(in_open_interval(id_from_byte(250), a, b));
  EXPECT_TRUE(in_open_interval(id_from_byte(5), a, b));
  EXPECT_FALSE(in_open_interval(id_from_byte(100), a, b));
}

TEST(NodeId, OpenIntervalEmptyWhenEqualEndpoints) {
  const NodeId a = id_from_byte(7);
  EXPECT_FALSE(in_open_interval(id_from_byte(7), a, a));
  EXPECT_FALSE(in_open_interval(id_from_byte(8), a, a));
}

TEST(NodeId, HalfOpenIntervalIncludesUpperBound) {
  const NodeId a = id_from_byte(10), b = id_from_byte(20);
  EXPECT_TRUE(in_half_open_interval(b, a, b));
  EXPECT_FALSE(in_half_open_interval(a, a, b));
  EXPECT_TRUE(in_half_open_interval(id_from_byte(20), a, b));
}

TEST(NodeId, HalfOpenIntervalFullRing) {
  // (a, a] is the whole ring: a single node owns every key.
  const NodeId a = id_from_byte(50);
  EXPECT_TRUE(in_half_open_interval(id_from_byte(0), a, a));
  EXPECT_TRUE(in_half_open_interval(id_from_byte(200), a, a));
  EXPECT_TRUE(in_half_open_interval(a, a, a));
}

// -- network fixtures --------------------------------------------------------------

struct TestNet {
  sim::Simulator sim;
  Rng rng{12345};
  NetworkConfig config;
  std::unique_ptr<ChordNetwork> net;

  explicit TestNet(std::size_t nodes, bool maintenance = false) {
    config.run_maintenance = maintenance;
    net = std::make_unique<ChordNetwork>(sim, rng, config);
    if (nodes > 0) net->bootstrap(nodes);
  }
};

/// Collects the ring order by walking successors from the lowest id.
std::vector<NodeId> walk_ring(ChordNetwork& net) {
  std::vector<NodeId> ids = net.alive_ids();
  std::sort(ids.begin(), ids.end());
  std::vector<NodeId> walked;
  NodeId cur = ids.front();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    walked.push_back(cur);
    cur = net.node(cur)->successor();
  }
  return walked;
}

TEST(ChordBootstrap, RingIsSortedAndClosed) {
  TestNet t(32);
  std::vector<NodeId> ids = t.net->alive_ids();
  std::sort(ids.begin(), ids.end());
  const std::vector<NodeId> walked = walk_ring(*t.net);
  EXPECT_EQ(walked, ids);
  // Walking n successors returns to the start.
  EXPECT_EQ(t.net->node(walked.back())->successor(), ids.front());
}

TEST(ChordBootstrap, PredecessorsMatchSuccessors) {
  TestNet t(16);
  for (const NodeId& id : t.net->alive_ids()) {
    const NodeId succ = t.net->node(id)->successor();
    ASSERT_TRUE(t.net->node(succ)->predecessor().has_value());
    EXPECT_EQ(*t.net->node(succ)->predecessor(), id);
  }
}

TEST(ChordBootstrap, FingersPointToFirstNodeAtOrAfterStart) {
  TestNet t(24);
  std::vector<NodeId> ids = t.net->alive_ids();
  std::sort(ids.begin(), ids.end());
  const ChordNode* n = t.net->node(ids[3]);
  for (std::size_t p = 0; p < kIdBits; p += 31) {
    const NodeId start = n->id().add_power_of_two(p);
    auto it = std::lower_bound(ids.begin(), ids.end(), start);
    const NodeId expected = it == ids.end() ? ids.front() : *it;
    ASSERT_TRUE(n->finger(p).has_value());
    EXPECT_EQ(*n->finger(p), expected);
  }
}

TEST(ChordLookup, FindsResponsibleNode) {
  TestNet t(64);
  std::vector<NodeId> ids = t.net->alive_ids();
  std::sort(ids.begin(), ids.end());
  for (int i = 0; i < 50; ++i) {
    const NodeId key = NodeId::hash_of_text("key-" + std::to_string(i));
    const LookupResult result = t.net->lookup(key);
    ASSERT_TRUE(result.ok);
    auto it = std::lower_bound(ids.begin(), ids.end(), key);
    const NodeId expected = it == ids.end() ? ids.front() : *it;
    EXPECT_EQ(result.node, expected) << "key " << key.short_hex();
  }
}

TEST(ChordLookup, HopCountIsLogarithmic) {
  TestNet t(256);
  for (int i = 0; i < 100; ++i)
    t.net->lookup(NodeId::hash_of_text("k" + std::to_string(i)));
  // log2(256) = 8; allow headroom but reject linear scans.
  EXPECT_LT(t.net->lookup_stats().mean_hops(), 12.0);
  EXPECT_EQ(t.net->lookup_stats().failures, 0u);
}

TEST(ChordLookup, SingleNodeOwnsEverything) {
  TestNet t(1);
  const LookupResult result = t.net->lookup(NodeId::hash_of_text("any"));
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.node, t.net->alive_ids().front());
}

TEST(ChordJoin, JoinedNodeEntersRing) {
  TestNet t(16);
  const NodeId fresh = t.net->add_node();
  t.net->run_maintenance_round();
  t.net->run_maintenance_round();
  std::vector<NodeId> ids = t.net->alive_ids();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids.size(), 17u);
  EXPECT_EQ(walk_ring(*t.net), ids);
  EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), fresh));
}

TEST(ChordJoin, JoinTransfersResponsibleKeys) {
  TestNet t(8);
  // Store 50 keys, add a node, check it received what it now owns.
  for (int i = 0; i < 50; ++i) {
    const NodeId key = NodeId::hash_of_text("kv-" + std::to_string(i));
    ASSERT_TRUE(t.net->put(key, bytes_of("v" + std::to_string(i))));
  }
  const NodeId fresh = t.net->add_node();
  t.net->run_maintenance_round();
  const ChordNode* n = t.net->node(fresh);
  for (int i = 0; i < 50; ++i) {
    const NodeId key = NodeId::hash_of_text("kv-" + std::to_string(i));
    if (n->responsible_for(key)) {
      EXPECT_TRUE(n->storage().contains(key))
          << "joined node missing key it owns";
    }
  }
}

TEST(ChordLeave, GracefulLeaveHandsKeysOver) {
  TestNet t(8);
  const NodeId key = NodeId::hash_of_text("precious");
  ASSERT_TRUE(t.net->put(key, bytes_of("data")));
  const LookupResult owner = t.net->lookup(key);
  t.net->remove_node(owner.node);
  t.net->run_maintenance_round();
  const auto value = t.net->get(key);
  ASSERT_TRUE(value != nullptr);
  EXPECT_EQ(*value, bytes_of("data"));
}

TEST(ChordFail, LookupsRouteAroundDeadNodes) {
  TestNet t(64);
  Rng pick(99);
  // Kill 10 random nodes abruptly.
  for (int i = 0; i < 10; ++i) {
    const auto& ids = t.net->alive_ids();
    t.net->kill_node(ids[pick.index(ids.size())]);
  }
  t.net->run_maintenance_round();
  t.net->run_maintenance_round();
  for (int i = 0; i < 30; ++i) {
    const LookupResult r =
        t.net->lookup(NodeId::hash_of_text("q" + std::to_string(i)));
    EXPECT_TRUE(r.ok);
    EXPECT_NE(t.net->live_node(r.node), nullptr);
  }
}

TEST(ChordFail, ReplicationSurvivesPrimaryDeath) {
  TestNet t(32);
  const NodeId key = NodeId::hash_of_text("replicated-key");
  ASSERT_TRUE(t.net->put(key, bytes_of("payload")));
  const LookupResult owner = t.net->lookup(key);
  t.net->kill_node(owner.node);
  t.net->run_maintenance_round();
  const auto value = t.net->get(key);
  ASSERT_TRUE(value != nullptr);
  EXPECT_EQ(*value, bytes_of("payload"));
}

TEST(ChordFail, ReplicaMaintenanceRestoresReplicationFactor) {
  TestNet t(32);
  const NodeId key = NodeId::hash_of_text("refreshed-key");
  ASSERT_TRUE(t.net->put(key, bytes_of("x")));
  const LookupResult owner = t.net->lookup(key);
  t.net->kill_node(owner.node);
  t.net->run_maintenance_round();
  t.net->run_maintenance_round();
  // Count copies across live nodes: should be back to replication_factor.
  std::size_t copies = 0;
  for (const NodeId& id : t.net->alive_ids())
    copies += t.net->node(id)->storage().contains(key) ? 1 : 0;
  EXPECT_GE(copies, t.config.replication_factor);
}

TEST(ChordStorage, PutGetRoundTrip) {
  TestNet t(16);
  const NodeId key = NodeId::hash_of_text("k");
  EXPECT_EQ(t.net->get(key), nullptr);
  ASSERT_TRUE(t.net->put(key, bytes_of("value")));
  const auto v = t.net->get(key);
  ASSERT_TRUE(v != nullptr);
  EXPECT_EQ(*v, bytes_of("value"));
}

TEST(ChordStorage, PutReplicatesToSuccessors) {
  TestNet t(16);
  const NodeId key = NodeId::hash_of_text("fan-out");
  ASSERT_TRUE(t.net->put(key, bytes_of("v")));
  std::size_t copies = 0;
  for (const NodeId& id : t.net->alive_ids())
    copies += t.net->node(id)->storage().contains(key) ? 1 : 0;
  EXPECT_EQ(copies, t.config.replication_factor);
}

TEST(ChordStorage, GetFindsReplicasAfterResponsibilityMigrates) {
  // Regression (ISSUE 3 satellite): put -> kill the primary -> three fresh
  // nodes join between the dead primary's ring position and the surviving
  // replicas. After stabilization the joiners are the first live successors
  // of the key but hold no copy (their join pull ranges exclude it), and
  // the old get() walk of exactly replication_factor nodes ended on them —
  // reporting a miss while both replicas were alive and reachable.
  TestNet t(32);
  const NodeId key = NodeId::hash_of_text("migrating-key");
  ASSERT_TRUE(t.net->put(key, bytes_of("survivor")));

  const LookupResult primary = t.net->lookup(key);
  ASSERT_TRUE(primary.ok);
  const NodeId s1 = t.net->node(primary.node)->successor();
  t.net->kill_node(primary.node);

  // Squeeze three empty nodes into (primary, s1), each strictly after the
  // previous, so no join pull range wraps around to cover the key.
  NodeId lower = primary.node;
  int joined = 0;
  for (int probe = 0; joined < 3 && probe < 200000; ++probe) {
    const NodeId candidate =
        NodeId::hash_of_text("interloper-" + std::to_string(probe));
    if (!in_open_interval(candidate, lower, s1)) continue;
    t.net->add_node_with_id(candidate);
    lower = candidate;
    ++joined;
  }
  ASSERT_EQ(joined, 3);

  // Converge ring pointers WITHOUT replica repair (repair would recopy the
  // value onto the joiners and mask the walk bug).
  for (int round = 0; round < 8; ++round) {
    const std::vector<NodeId> ids = t.net->alive_ids();
    for (const NodeId& id : ids) {
      ChordNode* n = t.net->live_node(id);
      if (n == nullptr) continue;
      n->stabilize();
      n->check_predecessor();
    }
  }
  for (const NodeId& id : t.net->alive_ids()) {
    ChordNode* n = t.net->live_node(id);
    if (n != nullptr) n->fix_all_fingers();
  }

  // The responsible node is now an empty interloper...
  const LookupResult migrated = t.net->lookup(key);
  ASSERT_TRUE(migrated.ok);
  EXPECT_NE(migrated.node, primary.node);
  EXPECT_FALSE(t.net->node(migrated.node)->storage().contains(key));
  // ...while the original replicas survive downstream.
  std::size_t copies = 0;
  for (const NodeId& id : t.net->alive_ids())
    copies += t.net->node(id)->storage().contains(key) ? 1 : 0;
  ASSERT_GE(copies, 2u);

  const auto value = t.net->get(key);
  ASSERT_TRUE(value != nullptr);
  EXPECT_EQ(*value, bytes_of("survivor"));
}

TEST(ChordStorage, GetRoutesPastAnExhaustedSuccessorList) {
  // Corner of the same walk: a fresh joiner J becomes responsible for the
  // key, but its only successor-list entry (the first replica holder) dies
  // before J re-stabilizes, so J's successor() degenerates to J itself.
  // The walk must route one step past J instead of giving up while the
  // second replica is alive one hop further down the ring.
  TestNet t(32);
  const NodeId key = NodeId::hash_of_text("exhausted-list-key");
  ASSERT_TRUE(t.net->put(key, bytes_of("still-here")));

  const LookupResult primary = t.net->lookup(key);
  ASSERT_TRUE(primary.ok);
  ChordNode* p = t.net->node(primary.node);
  const NodeId s1 = p->successor();
  const NodeId x = *p->predecessor();
  t.net->kill_node(primary.node);

  // J joins in (primary, s1): its successor list is exactly [s1].
  NodeId j{};
  bool joined = false;
  for (int probe = 0; !joined && probe < 200000; ++probe) {
    const NodeId candidate =
        NodeId::hash_of_text("lonely-" + std::to_string(probe));
    if (!in_open_interval(candidate, primary.node, s1)) continue;
    j = t.net->add_node_with_id(candidate);
    joined = true;
  }
  ASSERT_TRUE(joined);

  // The key's live predecessor adopts J (one stabilize round), then J's
  // only successor dies before J ever stabilizes.
  t.net->live_node(x)->stabilize();
  t.net->kill_node(s1);

  const LookupResult migrated = t.net->lookup(key);
  ASSERT_TRUE(migrated.ok);
  ASSERT_EQ(migrated.node, j);
  EXPECT_FALSE(t.net->node(j)->storage().contains(key));
  EXPECT_EQ(t.net->node(j)->successor(), j);  // list exhausted

  const auto value = t.net->get(key);
  ASSERT_TRUE(value != nullptr);
  EXPECT_EQ(*value, bytes_of("still-here"));
}

TEST(ChordStorage, StoreObserverFires) {
  TestNet t(8);
  std::size_t observed = 0;
  t.net->set_store_observer(
      [&](const NodeId&, const NodeId&, BytesView) { ++observed; });
  t.net->put(NodeId::hash_of_text("watched"), bytes_of("v"));
  EXPECT_EQ(observed, t.config.replication_factor);
}

TEST(ChordMessaging, MessageDeliveredWithLatency) {
  TestNet t(4);
  const NodeId from = t.net->alive_ids()[0];
  const NodeId to = t.net->alive_ids()[1];
  bool delivered = false;
  t.net->set_message_handler(to, [&](const NodeId& f, const NodeId& target,
                                     BytesView payload) {
    EXPECT_EQ(f, from);
    EXPECT_EQ(target, to);
    EXPECT_EQ(string_of(payload), "ping");
    delivered = true;
  });
  t.net->send_message(from, to, bytes_of("ping"));
  EXPECT_FALSE(delivered);  // in flight
  t.sim.run();
  EXPECT_TRUE(delivered);
  EXPECT_GT(t.sim.now(), 0.0);
  EXPECT_LE(t.sim.now(), t.config.max_message_latency);
}

TEST(ChordMessaging, RoutedMessageFollowsResponsibility) {
  TestNet t(64);
  const NodeId ring_point = NodeId::hash_of_text("slot-position");
  const LookupResult initial = t.net->lookup(ring_point);
  ASSERT_TRUE(initial.ok);

  NodeId received_at;
  t.net->set_default_message_handler(
      [&](const NodeId&, const NodeId& to, BytesView) { received_at = to; });

  t.net->send_message_routed(ring_point, ring_point, bytes_of("p1"));
  t.sim.run();
  EXPECT_EQ(received_at, initial.node);

  // Kill the owner: the routed message re-resolves to the successor.
  t.net->kill_node(initial.node);
  t.net->run_maintenance_round();
  t.net->send_message_routed(ring_point, ring_point, bytes_of("p2"));
  t.sim.run();
  EXPECT_NE(received_at, initial.node);
  EXPECT_NE(t.net->live_node(received_at), nullptr);
}

TEST(ChordMessaging, MessageToDeadNodeIsLost) {
  TestNet t(4);
  const NodeId from = t.net->alive_ids()[0];
  const NodeId to = t.net->alive_ids()[1];
  bool delivered = false;
  t.net->set_message_handler(
      to, [&](const NodeId&, const NodeId&, BytesView) { delivered = true; });
  t.net->send_message(from, to, bytes_of("ping"));
  t.net->kill_node(to);  // dies while the message is in flight
  t.sim.run();
  EXPECT_FALSE(delivered);
}

TEST(ChordMaintenance, PeriodicTasksKeepRingCorrectUnderJoins) {
  TestNet t(16, /*maintenance=*/true);
  // Let periodic maintenance run, add nodes mid-flight.
  t.sim.run_until(50.0);
  t.net->add_node();
  t.net->add_node();
  t.sim.run_until(300.0);
  std::vector<NodeId> ids = t.net->alive_ids();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(walk_ring(*t.net), ids);
}

// -- churn driver -------------------------------------------------------------------

TEST(ChurnDriver, DeathsFollowConfiguredRate) {
  TestNet t(200);
  ChurnConfig config;
  config.mean_lifetime = 100.0;
  config.replace_dead_nodes = true;
  ChurnDriver churn(*t.net, config);
  churn.start();
  t.sim.run_until(100.0);  // one mean lifetime
  churn.stop();
  // Expected deaths ~ population * (1 - e^-1) renewed ~ population * t/λ;
  // with replacement the death process is ~Poisson(n*t/λ) = 200.
  EXPECT_GT(churn.deaths(), 120u);
  EXPECT_LT(churn.deaths(), 300u);
  EXPECT_EQ(churn.replacements(), churn.deaths());
  EXPECT_EQ(t.net->alive_count(), 200u);
}

TEST(ChurnDriver, WithoutReplacementPopulationShrinks) {
  TestNet t(100);
  ChurnConfig config;
  config.mean_lifetime = 50.0;
  config.replace_dead_nodes = false;
  ChurnDriver churn(*t.net, config);
  churn.start();
  t.sim.run_until(25.0);  // half a lifetime: ~39% die
  churn.stop();
  EXPECT_LT(t.net->alive_count(), 90u);
  EXPECT_GT(t.net->alive_count(), 30u);
  EXPECT_EQ(churn.replacements(), 0u);
}

TEST(ChurnDriver, OnDeathObserverSeesReplacement) {
  TestNet t(50);
  ChurnConfig config;
  config.mean_lifetime = 10.0;
  ChurnDriver churn(*t.net, config);
  std::size_t observed = 0;
  churn.on_death = [&](const NodeId& dead, const NodeId* replacement) {
    EXPECT_EQ(t.net->live_node(dead), nullptr);
    EXPECT_NE(replacement, nullptr);
    ++observed;
  };
  churn.start();
  t.sim.run_until(5.0);
  churn.stop();
  EXPECT_EQ(observed, churn.deaths());
  EXPECT_GT(observed, 0u);
}

TEST(ChurnDriver, TransientOutagesComeBack) {
  TestNet t(50);
  ChurnConfig config;
  config.mean_lifetime = 5.0;
  config.transient_fraction = 1.0;  // every outage is transient
  config.mean_downtime = 1.0;
  ChurnDriver churn(*t.net, config);
  churn.start();
  t.sim.run_until(20.0);
  churn.stop();
  t.sim.run();  // drain pending rejoins
  EXPECT_GT(churn.transient_outages(), 0u);
  EXPECT_EQ(churn.deaths(), 0u);
  // Population recovers to (almost) full strength after rejoin events drain.
  EXPECT_GE(t.net->alive_count(), 45u);
}

TEST(ChurnDriver, LookupsStillSucceedUnderChurn) {
  TestNet t(128, /*maintenance=*/true);
  ChurnConfig config;
  config.mean_lifetime = 500.0;
  ChurnDriver churn(*t.net, config);
  churn.start();
  for (int epoch = 1; epoch <= 10; ++epoch) {
    t.sim.run_until(static_cast<double>(epoch) * 20.0);
    t.net->run_maintenance_round();
    const LookupResult r =
        t.net->lookup(NodeId::hash_of_text("live-" + std::to_string(epoch)));
    EXPECT_TRUE(r.ok);
  }
  churn.stop();
}

}  // namespace
}  // namespace emergence::dht

// Tests for the onion package format: envelope crypto, serialization, and
// whole-onion build/peel chains.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "emerge/onion.hpp"

namespace emergence::core {
namespace {

crypto::SymmetricKey key_of(std::uint8_t fill) {
  return crypto::SymmetricKey::from_bytes(Bytes(32, fill));
}

crypto::Drbg test_drbg() { return crypto::Drbg(std::uint64_t{77}); }

dht::NodeId node(std::string_view name) {
  return dht::NodeId::hash_of_text(name);
}

EnvelopeContent sample_content() {
  EnvelopeContent content;
  content.next_hops = {node("h1"), node("h2")};
  crypto::Share share;
  share.index = 3;
  share.data = bytes_of("share-bytes");
  content.shares.push_back(TargetedShare{1, share});
  return content;
}

TEST(Envelope, SealOpenRoundTrip) {
  crypto::Drbg drbg = test_drbg();
  const EnvelopeContent content = sample_content();
  const Bytes sealed = seal_envelope(key_of(1), content, 4, drbg);
  const EnvelopeContent opened = open_envelope(key_of(1), sealed, 4);
  EXPECT_EQ(opened, content);
}

TEST(Envelope, WrongKeyRejected) {
  crypto::Drbg drbg = test_drbg();
  const Bytes sealed = seal_envelope(key_of(1), sample_content(), 4, drbg);
  EXPECT_THROW(open_envelope(key_of(2), sealed, 4), CryptoError);
}

TEST(Envelope, ColumnBindingPreventsReplay) {
  // An envelope sealed for column 4 must not open at column 5: the column
  // number is authenticated as AAD.
  crypto::Drbg drbg = test_drbg();
  const Bytes sealed = seal_envelope(key_of(1), sample_content(), 4, drbg);
  EXPECT_THROW(open_envelope(key_of(1), sealed, 5), CryptoError);
}

TEST(Envelope, TerminalPayloadRoundTrips) {
  crypto::Drbg drbg = test_drbg();
  EnvelopeContent content;
  content.terminal_payload = bytes_of("the secret key");
  const Bytes sealed = seal_envelope(key_of(9), content, 7, drbg);
  const EnvelopeContent opened = open_envelope(key_of(9), sealed, 7);
  EXPECT_TRUE(opened.terminal());
  EXPECT_EQ(opened.terminal_payload, bytes_of("the secret key"));
}

TEST(Envelope, EmptyContentSupported) {
  crypto::Drbg drbg = test_drbg();
  const EnvelopeContent empty;
  const Bytes sealed = seal_envelope(key_of(5), empty, 1, drbg);
  EXPECT_EQ(open_envelope(key_of(5), sealed, 1), empty);
}

TEST(ColumnOnion, SerializationRoundTrip) {
  ColumnOnion onion;
  onion.column = 3;
  onion.envelopes.emplace_back(0, bytes_of("sealed-a"));
  onion.envelopes.emplace_back(2, bytes_of("sealed-b"));
  onion.inner = bytes_of("inner-onion-bytes");
  const Bytes raw = serialize_column_onion(onion);
  const ColumnOnion parsed = parse_column_onion(raw);
  EXPECT_EQ(parsed.column, 3);
  ASSERT_EQ(parsed.envelopes.size(), 2u);
  EXPECT_EQ(parsed.envelopes[0].first, 0);
  EXPECT_EQ(parsed.envelopes[1].first, 2);
  EXPECT_EQ(parsed.envelopes[1].second, bytes_of("sealed-b"));
  EXPECT_EQ(parsed.inner, bytes_of("inner-onion-bytes"));
}

TEST(ColumnOnion, BadMagicRejected) {
  EXPECT_THROW(parse_column_onion(bytes_of("garbage data here")), CodecError);
}

TEST(ColumnOnion, TruncationRejected) {
  ColumnOnion onion;
  onion.column = 1;
  onion.envelopes.emplace_back(0, bytes_of("sealed"));
  Bytes raw = serialize_column_onion(onion);
  raw.resize(raw.size() - 3);
  EXPECT_THROW(parse_column_onion(raw), CodecError);
}

TEST(ColumnOnion, EnvelopeLookupByIndex) {
  ColumnOnion onion;
  onion.envelopes.emplace_back(1, bytes_of("one"));
  onion.envelopes.emplace_back(4, bytes_of("four"));
  EXPECT_EQ(onion.envelope_for(4), bytes_of("four"));
  EXPECT_THROW(onion.envelope_for(2), CodecError);
}

// -- whole-onion construction -------------------------------------------------------

TEST(BuildOnion, SingleColumnTerminal) {
  crypto::Drbg drbg = test_drbg();
  ColumnBuildSpec spec;
  spec.holder_keys = {key_of(1), key_of(2)};
  spec.envelopes.resize(2);
  spec.envelopes[0].terminal_payload = bytes_of("secret");
  spec.envelopes[1].terminal_payload = bytes_of("secret");
  const Bytes raw = build_onion({spec}, drbg);

  const ColumnOnion onion = parse_column_onion(raw);
  EXPECT_EQ(onion.column, 1);
  EXPECT_TRUE(onion.inner.empty());
  const EnvelopeContent opened =
      open_envelope(key_of(2), onion.envelope_for(1), 1);
  EXPECT_EQ(opened.terminal_payload, bytes_of("secret"));
}

TEST(BuildOnion, FullPeelChain) {
  // 3 columns x 2 holders; peel the whole chain like the holders would.
  crypto::Drbg drbg = test_drbg();
  const Bytes secret = bytes_of("K-secret");
  std::vector<ColumnBuildSpec> specs(3);
  for (std::size_t c = 0; c < 3; ++c) {
    specs[c].holder_keys = {key_of(static_cast<std::uint8_t>(10 + c)),
                            key_of(static_cast<std::uint8_t>(10 + c))};
    specs[c].envelopes.resize(2);
    for (std::size_t h = 0; h < 2; ++h) {
      if (c == 2) {
        specs[c].envelopes[h].terminal_payload = secret;
      } else {
        specs[c].envelopes[h].next_hops = {node("a"), node("b")};
      }
    }
  }
  Bytes raw = build_onion(specs, drbg);
  for (std::uint16_t c = 1; c <= 3; ++c) {
    const ColumnOnion onion = parse_column_onion(raw);
    EXPECT_EQ(onion.column, c);
    const EnvelopeContent content = open_envelope(
        key_of(static_cast<std::uint8_t>(9 + c)), onion.envelope_for(0), c);
    if (c < 3) {
      EXPECT_FALSE(content.terminal());
      EXPECT_EQ(content.next_hops.size(), 2u);
      ASSERT_FALSE(content.inner_key.empty());
      raw = unwrap_inner(content.inner_key, onion.inner, c);
    } else {
      EXPECT_TRUE(content.terminal());
      EXPECT_EQ(content.terminal_payload, secret);
      EXPECT_TRUE(onion.inner.empty());
      EXPECT_TRUE(content.inner_key.empty());
    }
  }
}

TEST(BuildOnion, InnerLayersUnreadableWithOuterKey) {
  crypto::Drbg drbg = test_drbg();
  std::vector<ColumnBuildSpec> specs(2);
  for (std::size_t c = 0; c < 2; ++c) {
    specs[c].holder_keys = {key_of(static_cast<std::uint8_t>(20 + c))};
    specs[c].envelopes.resize(1);
    if (c == 1)
      specs[c].envelopes[0].terminal_payload = bytes_of("s");
    else
      specs[c].envelopes[0].next_hops = {node("x")};
  }
  const Bytes raw = build_onion(specs, drbg);
  const ColumnOnion outer = parse_column_onion(raw);
  // The inner onion is sealed: without the column-1 envelope's transport
  // key its bytes are not even parseable, so an adversary holding only a
  // deep-layer key cannot skip ahead (the K3 case of Fig. 2(b)).
  EXPECT_THROW(parse_column_onion(outer.inner), CodecError);
  EXPECT_THROW(unwrap_inner(Bytes(32, 0xee), outer.inner, 1), CryptoError);

  // Peeling properly: column-1 key -> transport key -> column 2.
  const EnvelopeContent col1 =
      open_envelope(key_of(20), outer.envelope_for(0), 1);
  const ColumnOnion inner =
      parse_column_onion(unwrap_inner(col1.inner_key, outer.inner, 1));
  // Column-1 key must not open the column-2 envelope.
  EXPECT_THROW(open_envelope(key_of(20), inner.envelope_for(0), 2),
               CryptoError);
  // And the right key must.
  EXPECT_NO_THROW(open_envelope(key_of(21), inner.envelope_for(0), 2));
}

TEST(BuildOnion, SharesTravelInsideEnvelopes) {
  crypto::Drbg drbg = test_drbg();
  crypto::Drbg key_drbg(std::uint64_t{1});
  const Bytes next_key = key_drbg.bytes(32);
  auto shares = crypto::shamir_split(next_key, 2, 3, drbg);

  std::vector<ColumnBuildSpec> specs(2);
  specs[0].holder_keys = {key_of(1), key_of(2), key_of(3)};
  specs[0].envelopes.resize(3);
  for (std::size_t h = 0; h < 3; ++h) {
    specs[0].envelopes[h].next_hops = {node("n0")};
    specs[0].envelopes[h].shares.push_back(TargetedShare{0, shares[h]});
  }
  specs[1].holder_keys = {crypto::SymmetricKey::from_bytes(next_key)};
  specs[1].envelopes.resize(1);
  specs[1].envelopes[0].terminal_payload = bytes_of("deep secret");

  const Bytes raw = build_onion(specs, drbg);
  const ColumnOnion outer = parse_column_onion(raw);

  // Collect shares from two of the three envelopes and reconstruct the
  // column-2 key, then peel the terminal layer -- the share scheme's flow.
  std::vector<crypto::Share> gathered;
  Bytes transport_key;
  for (std::uint8_t h : {0, 2}) {
    const EnvelopeContent content = open_envelope(
        key_of(static_cast<std::uint8_t>(h + 1)), outer.envelope_for(h), 1);
    ASSERT_EQ(content.shares.size(), 1u);
    gathered.push_back(content.shares[0].share);
    transport_key = content.inner_key;  // every envelope carries the same TK
  }
  const Bytes recovered = crypto::shamir_combine(gathered, 2);
  EXPECT_EQ(recovered, next_key);
  const ColumnOnion inner =
      parse_column_onion(unwrap_inner(transport_key, outer.inner, 1));
  const EnvelopeContent terminal =
      open_envelope(crypto::SymmetricKey::from_bytes(recovered),
                    inner.envelope_for(0), 2);
  EXPECT_EQ(terminal.terminal_payload, bytes_of("deep secret"));
}

TEST(BuildOnion, ValidatesSpecShape) {
  crypto::Drbg drbg = test_drbg();
  EXPECT_THROW(build_onion({}, drbg), PreconditionError);
  ColumnBuildSpec bad;
  bad.holder_keys = {key_of(1)};
  bad.envelopes.resize(2);
  EXPECT_THROW(build_onion({bad}, drbg), PreconditionError);
}

TEST(BuildOnion, OnionSizeGrowsLinearlyInColumns) {
  // The shared-inner construction must avoid exponential blowup.
  crypto::Drbg drbg = test_drbg();
  auto build_with_columns = [&](std::size_t l) {
    std::vector<ColumnBuildSpec> specs(l);
    for (std::size_t c = 0; c < l; ++c) {
      specs[c].holder_keys = {key_of(1), key_of(2), key_of(3)};
      specs[c].envelopes.resize(3);
      for (auto& env : specs[c].envelopes) {
        if (c + 1 == l)
          env.terminal_payload = Bytes(32, 0xaa);
        else
          env.next_hops = {node("a"), node("b"), node("c")};
      }
    }
    return build_onion(specs, drbg).size();
  };
  const std::size_t size4 = build_with_columns(4);
  const std::size_t size8 = build_with_columns(8);
  EXPECT_LT(size8, size4 * 3);  // linear-ish, not 16x
}

}  // namespace
}  // namespace emergence::core

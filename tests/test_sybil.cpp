// Tests for the Sybil/Eclipse provisioning model.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "emerge/sybil.hpp"

namespace emergence::core {
namespace {

TEST(Sybil, AchievedFraction) {
  const SybilAttack attack{9000, 1000};
  EXPECT_DOUBLE_EQ(attack.achieved_p(), 0.1);
  EXPECT_EQ(attack.total_nodes(), 10000u);
}

TEST(Sybil, EmptyNetworkIsZero) {
  const SybilAttack attack{0, 0};
  EXPECT_DOUBLE_EQ(attack.achieved_p(), 0.0);
}

TEST(Sybil, NeededIdentitiesInvertAchieved) {
  for (double p : {0.1, 0.25, 0.4, 0.49}) {
    const std::size_t honest = 10000;
    const std::size_t s = sybils_needed(honest, p);
    const SybilAttack attack{honest, s};
    EXPECT_GE(attack.achieved_p() + 1e-9, p) << p;
    // One fewer identity must fall short.
    if (s > 0) {
      const SybilAttack weaker{honest, s - 1};
      EXPECT_LT(weaker.achieved_p(), p + 1e-4);
    }
  }
}

TEST(Sybil, ZeroPNeedsNoIdentities) {
  EXPECT_EQ(sybils_needed(10000, 0.0), 0u);
}

TEST(Sybil, CostGrowsSuperlinearly) {
  // p = 1/3 costs 0.5 identities per honest node; p = 1/2 costs 1; the
  // marginal price of influence rises sharply.
  EXPECT_NEAR(sybil_cost_factor(1.0 / 3.0), 0.5, 1e-12);
  EXPECT_LT(sybil_cost_factor(0.2), sybil_cost_factor(0.4));
  EXPECT_LT(sybil_cost_factor(0.4), sybil_cost_factor(0.45));
}

TEST(Sybil, LargeNetworksRaiseAttackCost) {
  // The paper's defense argument: the same p costs 100x the identities in a
  // 100x larger network.
  EXPECT_EQ(sybils_needed(100, 0.3), 43u);
  EXPECT_EQ(sybils_needed(10000, 0.3), 4286u);
}

TEST(Sybil, ParametersValidated) {
  EXPECT_THROW(sybils_needed(10, 1.0), PreconditionError);
  EXPECT_THROW(sybil_cost_factor(-0.1), PreconditionError);
  EXPECT_THROW(full_eclipse_probability(8, 1.5), PreconditionError);
}

TEST(Eclipse, FullEclipseProbability) {
  EXPECT_DOUBLE_EQ(full_eclipse_probability(1, 0.3), 0.3);
  EXPECT_NEAR(full_eclipse_probability(8, 0.3), std::pow(0.3, 8), 1e-15);
  EXPECT_DOUBLE_EQ(full_eclipse_probability(8, 0.0), 0.0);
}

TEST(Eclipse, BiggerTablesResist) {
  for (std::size_t size = 1; size < 16; ++size) {
    EXPECT_GT(full_eclipse_probability(size, 0.4),
              full_eclipse_probability(size + 1, 0.4));
  }
}

}  // namespace
}  // namespace emergence::core

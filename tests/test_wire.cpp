// Wire-protocol properties (src/service/wire.hpp):
//   * encode -> decode -> encode is byte-identical for EVERY message type
//     (the frames the loopback harness and a real UDP cluster exchange are
//     interchangeable);
//   * decode_frame never throws: each malformation class is rejected with
//     its own WireStats bucket and frames_received stays untouched.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "service/wire.hpp"

namespace emergence::service {
namespace {

dht::NodeId id_of(const std::string& text) {
  return dht::NodeId::hash_of_text(text);
}

Endpoint ep(std::uint32_t ip, std::uint16_t port) { return Endpoint{ip, port}; }

Peer peer(const std::string& name, std::uint16_t port) {
  return Peer{id_of(name), ep(0x7F000001, port)};
}

/// Every message type once, with every field populated asymmetrically so a
/// swapped codec read order cannot round-trip by accident.
std::vector<WireMessage> sample_messages() {
  SessionMeta meta;
  meta.session_nonce = 0xDEADBEEFCAFEF00Dull;
  meta.start_time = 1754650000.25;
  meta.emerging_time = 120.5;
  meta.scheme = core::SchemeKind::kShare;
  meta.k = 3;
  meta.l = 4;
  meta.carriers_n = 5;
  meta.threshold_m = 2;
  meta.backend = crypto::CipherBackend::kAes256Ctr;
  meta.assembly_delay = 1.5;
  meta.receiver = ep(0x7F000001, 4242);

  std::vector<WireMessage> all;
  all.push_back(Ping{7, ep(0x7F000001, 9000)});
  all.push_back(Pong{7, peer("pong", 9001)});
  all.push_back(FindSuccessor{8, ep(0x7F000001, 9002), id_of("target"), 31});
  all.push_back(FindSuccessorReply{8, peer("succ", 9003)});
  all.push_back(GetPredecessor{9, ep(0x7F000001, 9004)});
  all.push_back(PredecessorReply{
      9, true, peer("pred", 9005), {peer("s1", 9006), peer("s2", 9007)}});
  all.push_back(Notify{peer("notifier", 9008)});
  all.push_back(Put{10, ep(0x7F000001, 9009), id_of("key"),
                    Bytes{1, 2, 3, 4, 5}, 12});
  all.push_back(PutAck{10});
  all.push_back(Get{11, ep(0x7F000001, 9010), id_of("key2"), 3});
  all.push_back(GetReply{11, true, Bytes{9, 8, 7}});
  all.push_back(StoreReplica{id_of("rep"), Bytes{42}});
  all.push_back(Package{meta, id_of("ring-point"), Bytes{0xAA, 0xBB, 0xCC}, 16});
  all.push_back(Deliver{Bytes{0x01, 0x02}});
  all.push_back(Submit{12, ep(0x7F000001, 9011), Bytes{0x11, 0x22},
                       ep(0x7F000001, 9012)});
  all.push_back(SubmitAck{12, false, "holding period too short", 77, 1.0, 2.0});
  all.push_back(Status{13, ep(0x7F000001, 9013)});
  StatusReply status;
  status.token = 13;
  status.self = peer("self", 9014);
  status.has_predecessor = true;
  status.predecessor = peer("pred", 9015);
  status.successors = {peer("a", 9016), peer("b", 9017), peer("c", 9018)};
  status.store_size = 21;
  status.holder_slots = 4;
  status.deliveries = 2;
  status.malformed_frames = 0;
  all.push_back(status);
  all.push_back(MetricsRequest{14, ep(0x7F000001, 9019)});
  MetricsResponse metrics;
  metrics.token = 14;
  metrics.entries = {{"emergence_wire_frames_sent_total", 42.0},
                     {"emergence_daemon_deliveries_total", 3.0},
                     {"emergence_store_size", 17.5}};
  all.push_back(metrics);
  return all;
}

TEST(Wire, EveryMessageTypeRoundTripsByteIdentical) {
  const auto messages = sample_messages();
  ASSERT_EQ(messages.size(), 20u);  // every MessageType covered once

  std::set<MessageType> seen;
  for (const WireMessage& message : messages) {
    seen.insert(message_type(message));
    const Bytes frame = encode_frame(message);

    WireStats stats;
    const auto decoded = decode_frame(frame, stats);
    ASSERT_TRUE(decoded.has_value())
        << "type " << static_cast<int>(message_type(message));
    EXPECT_EQ(stats.frames_received, 1u);
    EXPECT_EQ(stats.malformed_frames(), 0u);
    EXPECT_EQ(decoded->index(), message.index());

    // The round-trip contract: re-encoding reproduces the exact bytes.
    EXPECT_EQ(encode_frame(*decoded), frame)
        << "type " << static_cast<int>(message_type(message));
  }
  EXPECT_EQ(seen.size(), 20u);
}

TEST(Wire, FloatingPointFieldsSurviveExactly) {
  SubmitAck ack;
  ack.token = 1;
  ack.ok = true;
  ack.start_time = 0.1 + 0.2;  // not representable prettily
  ack.release_time = 1e-300;   // subnormal-adjacent
  const Bytes frame = encode_frame(WireMessage{ack});
  WireStats stats;
  const auto decoded = decode_frame(frame, stats);
  ASSERT_TRUE(decoded.has_value());
  const auto& back = std::get<SubmitAck>(*decoded);
  EXPECT_EQ(back.start_time, ack.start_time);  // bit-exact, not approximate
  EXPECT_EQ(back.release_time, ack.release_time);
}

TEST(Wire, RejectsBadMagic) {
  Bytes frame = encode_frame(WireMessage{PutAck{5}});
  frame[0] = 0x00;
  WireStats stats;
  EXPECT_FALSE(decode_frame(frame, stats).has_value());
  EXPECT_EQ(stats.bad_magic, 1u);
  EXPECT_EQ(stats.frames_received, 0u);
}

TEST(Wire, RejectsVersionMismatch) {
  Bytes frame = encode_frame(WireMessage{PutAck{5}});
  frame[1] = kWireVersion + 1;
  WireStats stats;
  EXPECT_FALSE(decode_frame(frame, stats).has_value());
  EXPECT_EQ(stats.version_mismatch, 1u);
}

TEST(Wire, RejectsUnknownType) {
  Bytes frame = encode_frame(WireMessage{PutAck{5}});
  frame[2] = 0;  // below every MessageType
  WireStats stats;
  EXPECT_FALSE(decode_frame(frame, stats).has_value());
  frame[2] = 200;  // above every MessageType
  EXPECT_FALSE(decode_frame(frame, stats).has_value());
  EXPECT_EQ(stats.unknown_type, 2u);
}

TEST(Wire, RejectsTruncatedFrames) {
  const Bytes frame = encode_frame(WireMessage{Pong{5, Peer{}}});
  WireStats stats;
  // Every proper prefix of the header+payload must be rejected, never read
  // out of bounds, and never throw.
  for (std::size_t len = 1; len < frame.size(); ++len) {
    const BytesView prefix(frame.data(), len);
    EXPECT_FALSE(decode_frame(prefix, stats).has_value()) << "len " << len;
  }
  EXPECT_EQ(stats.frames_received, 0u);
  EXPECT_EQ(stats.malformed_frames(),
            stats.bad_magic + stats.version_mismatch + stats.truncated_frames +
                stats.oversized_frames + stats.unknown_type +
                stats.malformed_payload);
  EXPECT_GT(stats.truncated_frames, 0u);
}

TEST(Wire, RejectsLengthLongerThanBody) {
  Bytes frame = encode_frame(WireMessage{PutAck{5}});
  frame[3] = static_cast<std::uint8_t>(frame[3] + 1);  // length += 1 (LE u32)
  WireStats stats;
  EXPECT_FALSE(decode_frame(frame, stats).has_value());
  EXPECT_EQ(stats.truncated_frames, 1u);
}

TEST(Wire, RejectsOversizedFrames) {
  Bytes frame = encode_frame(WireMessage{PutAck{5}});
  // Claim a payload beyond kMaxFramePayload in the length field.
  const std::uint32_t huge = kMaxFramePayload + 1;
  frame[3] = static_cast<std::uint8_t>(huge & 0xFF);
  frame[4] = static_cast<std::uint8_t>((huge >> 8) & 0xFF);
  frame[5] = static_cast<std::uint8_t>((huge >> 16) & 0xFF);
  frame[6] = static_cast<std::uint8_t>((huge >> 24) & 0xFF);
  WireStats stats;
  EXPECT_FALSE(decode_frame(frame, stats).has_value());
  EXPECT_EQ(stats.oversized_frames, 1u);
}

TEST(Wire, RejectsMalformedPayload) {
  // A Pong frame whose payload is garbage: codec failure, not a crash.
  Bytes frame = encode_frame(WireMessage{PutAck{5}});
  frame[2] = static_cast<std::uint8_t>(MessageType::kPong);
  WireStats stats;
  EXPECT_FALSE(decode_frame(frame, stats).has_value());
  EXPECT_EQ(stats.malformed_payload, 1u);
}

TEST(Wire, TrailingGarbageInPayloadIsMalformed) {
  Bytes frame = encode_frame(WireMessage{PutAck{5}});
  frame.push_back(0x55);  // extend the body...
  frame[3] = static_cast<std::uint8_t>(frame[3] + 1);  // ...and the length
  WireStats stats;
  EXPECT_FALSE(decode_frame(frame, stats).has_value());
  EXPECT_EQ(stats.malformed_payload, 1u);  // codec's expect_done fires
}

TEST(Wire, EncodeRejectsOverlongPayloadUpFront) {
  Deliver deliver;
  deliver.event = Bytes(kMaxFramePayload + 1, 0xAB);
  EXPECT_THROW(encode_frame(WireMessage{deliver}), PreconditionError);
}

TEST(Wire, EndpointParsesAndPrints) {
  const Endpoint e = Endpoint::parse("127.0.0.1:9000");
  EXPECT_EQ(e.ip, 0x7F000001u);
  EXPECT_EQ(e.port, 9000);
  EXPECT_EQ(e.to_string(), "127.0.0.1:9000");
  EXPECT_THROW(Endpoint::parse("localhost:9000"), PreconditionError);
  EXPECT_THROW(Endpoint::parse("1.2.3.4"), PreconditionError);
  EXPECT_THROW(Endpoint::parse("1.2.3.4:"), PreconditionError);
  EXPECT_THROW(Endpoint::parse("1.2.3.999:1"), PreconditionError);
  EXPECT_THROW(Endpoint::parse("1.2.3.4:70000"), PreconditionError);
}

TEST(Wire, SessionMetaDeadlineHelpers) {
  SessionMeta meta;
  meta.start_time = 100.0;
  meta.emerging_time = 60.0;
  meta.l = 4;
  EXPECT_DOUBLE_EQ(meta.holding_period(), 15.0);
  EXPECT_DOUBLE_EQ(meta.release_time(), 160.0);
}

}  // namespace
}  // namespace emergence::service

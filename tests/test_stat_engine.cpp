// Tests for the Monte-Carlo statistical engine: agreement with the
// closed-form models, churn behavior, and the sampler.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "emerge/monte_carlo.hpp"
#include "emerge/resilience.hpp"
#include "emerge/sampler.hpp"

namespace emergence::core {
namespace {

// -- sampler ------------------------------------------------------------------

TEST(Sampler, DrawsExactMaliciousCount) {
  Rng rng(1);
  MaliciousSampler sampler(100, 37, rng);
  std::size_t malicious = 0;
  for (int i = 0; i < 100; ++i) malicious += sampler.draw();
  EXPECT_EQ(malicious, 37u);
  EXPECT_EQ(sampler.remaining(), 0u);
}

TEST(Sampler, ExhaustionThrows) {
  Rng rng(1);
  MaliciousSampler sampler(3, 1, rng);
  sampler.draw();
  sampler.draw();
  sampler.draw();
  EXPECT_THROW(sampler.draw(), PreconditionError);
}

TEST(Sampler, RateMatchesPopulation) {
  Rng rng(2);
  MaliciousSampler sampler(1000, 250, rng);
  EXPECT_DOUBLE_EQ(sampler.malicious_rate(), 0.25);
}

TEST(Sampler, FreshDrawsAreIndependent) {
  Rng rng(3);
  MaliciousSampler sampler(10, 5, rng);
  // Fresh draws do not consume the population.
  std::size_t hits = 0;
  for (int i = 0; i < 10000; ++i) hits += sampler.draw_fresh();
  EXPECT_EQ(sampler.remaining(), 10u);
  EXPECT_NEAR(static_cast<double>(hits) / 10000.0, 0.5, 0.03);
}

TEST(Sampler, MoreMaliciousThanPopulationRejected) {
  Rng rng(4);
  EXPECT_THROW(MaliciousSampler(10, 11, rng), PreconditionError);
}

TEST(Sampler, HypergeometricFrequency) {
  // First-draw malicious probability equals the population rate.
  Rng rng(5);
  std::size_t hits = 0;
  for (int i = 0; i < 20000; ++i) {
    MaliciousSampler sampler(50, 10, rng);
    hits += sampler.draw();
  }
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.2, 0.01);
}

// -- Monte Carlo vs analytics (no churn) ------------------------------------------

EvalPoint point(double p, std::size_t runs = 3000) {
  EvalPoint pt;
  pt.p = p;
  pt.population = 10000;
  pt.planner.node_budget = 10000;
  pt.runs = runs;
  pt.seed = 42;
  return pt;
}

TEST(StatEngine, CentralizedMatchesOneMinusP) {
  for (double p : {0.1, 0.3, 0.5}) {
    const EvalResult r =
        evaluate_fixed_shape(SchemeKind::kCentralized, PathShape{1, 1},
                             point(p));
    EXPECT_NEAR(r.monte_carlo.release_ahead, 1.0 - p, 0.03) << p;
    EXPECT_NEAR(r.monte_carlo.drop, 1.0 - p, 0.03) << p;
  }
}

class MultipathAgreement
    : public ::testing::TestWithParam<std::tuple<SchemeKind, double>> {};

TEST_P(MultipathAgreement, MonteCarloMatchesClosedForm) {
  const auto [kind, p] = GetParam();
  const PathShape shape{3, 5};
  const EvalResult r = evaluate_fixed_shape(kind, shape, point(p));
  const Resilience expected = analytic_resilience(kind, p, shape);
  EXPECT_NEAR(r.monte_carlo.release_ahead, expected.release_ahead, 0.04)
      << to_string(kind) << " p=" << p;
  EXPECT_NEAR(r.monte_carlo.drop, expected.drop, 0.04)
      << to_string(kind) << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, MultipathAgreement,
    ::testing::Combine(::testing::Values(SchemeKind::kDisjoint,
                                         SchemeKind::kJoint),
                       ::testing::Values(0.05, 0.2, 0.35, 0.5)),
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(StatEngine, ExtremePZero) {
  const EvalResult r =
      evaluate_fixed_shape(SchemeKind::kJoint, PathShape{2, 3}, point(0.0));
  EXPECT_DOUBLE_EQ(r.monte_carlo.release_ahead, 1.0);
  EXPECT_DOUBLE_EQ(r.monte_carlo.drop, 1.0);
}

TEST(StatEngine, SuffixSemanticsAreLooser) {
  // A malicious terminal holder alone implies suffix >= 1, so the mean
  // suffix at moderate p must exceed the strict all-columns rate.
  const EvalResult r =
      evaluate_fixed_shape(SchemeKind::kJoint, PathShape{2, 6}, point(0.3));
  EXPECT_GT(r.mean_compromised_suffix, 0.1);
  // Strict release success needs all 6 columns: far rarer.
  EXPECT_LT(1.0 - r.monte_carlo.release_ahead, r.mean_compromised_suffix);
}

TEST(StatEngine, HypergeometricVsBernoulliVisibleAtFullPopulation) {
  // When the paths use the whole population the malicious count is exact,
  // shrinking the variance; the MC must still match analytics reasonably.
  EvalPoint pt = point(0.3, 1500);
  pt.population = 60;
  pt.planner.node_budget = 60;
  const EvalResult r =
      evaluate_fixed_shape(SchemeKind::kJoint, PathShape{3, 20}, pt);
  EXPECT_GE(r.monte_carlo.combined(), 0.0);
  EXPECT_LE(r.monte_carlo.combined(), 1.0);
}

// -- churn Monte Carlo --------------------------------------------------------------

TEST(StatEngineChurn, CentralizedMatchesRenewalFormula) {
  for (double alpha : {1.0, 3.0}) {
    EvalPoint pt = point(0.2, 4000);
    pt.churn = ChurnSpec::with_alpha(alpha);
    const EvalResult r =
        evaluate_fixed_shape(SchemeKind::kCentralized, PathShape{1, 1}, pt);
    const double expected = 0.8 * std::exp(-alpha * 0.2);
    EXPECT_NEAR(r.monte_carlo.release_ahead, expected, 0.04) << alpha;
  }
}

TEST(StatEngineChurn, ReleaseExposureMatchesClosedForm) {
  EvalPoint pt = point(0.15, 3000);
  pt.churn = ChurnSpec::with_alpha(2.0);
  const PathShape shape{3, 6};
  const EvalResult r = evaluate_fixed_shape(SchemeKind::kJoint, shape, pt);
  const Resilience expected = joint_churn_resilience(0.15, shape, pt.churn);
  EXPECT_NEAR(r.monte_carlo.release_ahead, expected.release_ahead, 0.05);
}

TEST(StatEngineChurn, DropResilienceDegradesWithAlpha) {
  const PathShape shape{2, 8};
  double prev = 1.1;
  for (double alpha : {0.5, 2.0, 5.0}) {
    EvalPoint pt = point(0.1, 2000);
    pt.churn = ChurnSpec::with_alpha(alpha);
    const EvalResult r =
        evaluate_fixed_shape(SchemeKind::kDisjoint, shape, pt);
    EXPECT_LT(r.monte_carlo.drop, prev + 0.02) << alpha;
    prev = r.monte_carlo.drop;
  }
}

TEST(StatEngineChurn, JointBeatsDisjointUnderChurn) {
  EvalPoint pt = point(0.1, 3000);
  pt.churn = ChurnSpec::with_alpha(3.0);
  const PathShape shape{4, 8};
  const EvalResult joint = evaluate_fixed_shape(SchemeKind::kJoint, shape, pt);
  const EvalResult disjoint =
      evaluate_fixed_shape(SchemeKind::kDisjoint, shape, pt);
  EXPECT_GT(joint.monte_carlo.drop, disjoint.monte_carlo.drop);
}

// -- share scheme Monte Carlo --------------------------------------------------------

TEST(StatEngineShare, HighResilienceAtLowP) {
  EvalPoint pt = point(0.1, 1000);
  pt.churn = ChurnSpec::with_alpha(3.0);
  const EvalResult r = evaluate_point(SchemeKind::kShare, pt);
  EXPECT_GT(r.monte_carlo.release_ahead, 0.97);
  EXPECT_GT(r.monte_carlo.drop, 0.97);
}

TEST(StatEngineShare, CollapsesBeyondBalancePoint) {
  EvalPoint pt = point(0.45, 600);
  pt.churn = ChurnSpec::with_alpha(3.0);
  const EvalResult r = evaluate_point(SchemeKind::kShare, pt);
  EXPECT_LT(r.monte_carlo.combined(), 0.5);
}

TEST(StatEngineShare, SurvivesHeavyChurnWherePatternSchemesFail) {
  // The headline of Fig. 7(d): alpha = 5, p < 0.3.
  EvalPoint pt = point(0.25, 800);
  pt.churn = ChurnSpec::with_alpha(5.0);
  const EvalResult share = evaluate_point(SchemeKind::kShare, pt);
  const EvalResult joint = evaluate_point(SchemeKind::kJoint, pt);
  EXPECT_GT(share.monte_carlo.combined(), 0.9);
  EXPECT_LT(joint.monte_carlo.combined(), 0.6);
}

TEST(StatEngineShare, SmallBudgetDegradesGracefully) {
  // Fig. 8 at N = 100: the paper's model says > 0.9 for p <= 0.14. Our MC
  // scores release with the cascade semantics (one column's threshold
  // reached => every later column falls, matching the real attack engine),
  // which the paper's analytic Rr misses — it multiplies per-column capture
  // probabilities as if the adversary had to reach the threshold in every
  // column independently. The MC therefore sits a little below the paper's
  // figure; the drop side still matches the analytic model.
  EvalPoint pt = point(0.1, 1500);
  pt.population = 10000;
  pt.planner.node_budget = 100;
  pt.churn = ChurnSpec::with_alpha(3.0);
  const EvalResult r = evaluate_point(SchemeKind::kShare, pt);
  EXPECT_GT(r.monte_carlo.combined(), 0.85);
  EXPECT_NEAR(r.monte_carlo.drop, r.analytic.drop, 0.05);
}

TEST(StatEngineShare, NodeUsageWithinBudget) {
  EvalPoint pt = point(0.2, 10);
  pt.planner.node_budget = 1000;
  pt.churn = ChurnSpec::with_alpha(3.0);
  const EvalResult r = evaluate_point(SchemeKind::kShare, pt);
  EXPECT_LE(r.nodes_used, 1000u);
  ASSERT_TRUE(r.alg1.has_value());
  EXPECT_GE(r.alg1->n, r.shape.k);
}

// -- evaluate_point plumbing ----------------------------------------------------------

TEST(EvaluatePoint, DeterministicForSeed) {
  const EvalResult a = evaluate_point(SchemeKind::kJoint, point(0.3, 200));
  const EvalResult b = evaluate_point(SchemeKind::kJoint, point(0.3, 200));
  EXPECT_DOUBLE_EQ(a.monte_carlo.release_ahead, b.monte_carlo.release_ahead);
  EXPECT_DOUBLE_EQ(a.monte_carlo.drop, b.monte_carlo.drop);
}

TEST(EvaluatePoint, DifferentSeedsJitter) {
  EvalPoint a = point(0.3, 200);
  EvalPoint b = point(0.3, 200);
  b.seed = 43;
  const EvalResult ra = evaluate_point(SchemeKind::kJoint, a);
  const EvalResult rb = evaluate_point(SchemeKind::kJoint, b);
  // Not bit-identical (statistically ~impossible for 200 runs to match on
  // both metrics unless the seed is ignored... which is the bug we catch).
  EXPECT_TRUE(ra.monte_carlo.release_ahead != rb.monte_carlo.release_ahead ||
              ra.monte_carlo.drop != rb.monte_carlo.drop ||
              ra.mean_compromised_suffix != rb.mean_compromised_suffix);
}

TEST(EvaluatePoint, AnalyticAndMcAgreeOnPlannedGeometry) {
  const EvalResult r = evaluate_point(SchemeKind::kDisjoint, point(0.2, 3000));
  EXPECT_NEAR(r.analytic.release_ahead, r.monte_carlo.release_ahead, 0.05);
  EXPECT_NEAR(r.analytic.drop, r.monte_carlo.drop, 0.05);
}

TEST(EvaluatePoint, RejectsInvalidP) {
  EXPECT_THROW(evaluate_point(SchemeKind::kJoint, point(1.5)),
               PreconditionError);
}

TEST(EvaluatePoint, StderrShrinksWithRuns) {
  const EvalResult few = evaluate_point(SchemeKind::kJoint, point(0.4, 100));
  const EvalResult many = evaluate_point(SchemeKind::kJoint, point(0.4, 4000));
  EXPECT_LT(many.release_stderr, few.release_stderr + 1e-9);
}

}  // namespace
}  // namespace emergence::core

#!/usr/bin/env python3
"""Schema checks for the observability artifacts CI uploads.

Stdlib only. Two subcommands:

  check_obs.py trace BENCH_trace.json [more...]
      Each file must be valid Chrome trace_event JSON: a top-level object
      with a "traceEvents" list whose entries are complete-event dicts
      (ph == "X", integer ts/dur >= 0, non-empty name and cat, string-only
      args). The same format chrome://tracing and Perfetto load.

  check_obs.py bench BENCH_service.json [more...]
      Each file must be a schema >= 3 BENCH artifact whose "metrics" block
      matches what obs::MetricsRegistry::write_json emits: integer
      counters >= 0, finite-or-null gauges, histograms carrying exactly
      the count/min/max/mean/p50/p99 summary keys, and every series name
      prometheus-legal.

Exit 0 when every file passes; 1 with one line per violation otherwise.
"""

import json
import re
import sys

SERIES_RE = re.compile(r'^[A-Za-z_][A-Za-z0-9_]*(\{[A-Za-z_][A-Za-z0-9_]*='
                       r'"[^"]*"(,[A-Za-z_][A-Za-z0-9_]*="[^"]*")*\})?$')
HISTOGRAM_KEYS = {"count", "min", "max", "mean", "p50", "p99"}


def check_trace(path, doc, fail):
    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(path, 'missing "traceEvents" list')
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            fail(path, f"{where}: not an object")
            continue
        if event.get("ph") != "X":
            fail(path, f'{where}: ph is {event.get("ph")!r}, want "X"')
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                fail(path, f"{where}: {key} is {value!r}, want int >= 0")
        for key in ("name", "cat"):
            if not isinstance(event.get(key), str) or not event[key]:
                fail(path, f"{where}: {key} missing or empty")
        args = event.get("args", {})
        if not isinstance(args, dict) or not all(
                isinstance(k, str) and isinstance(v, str)
                for k, v in args.items()):
            fail(path, f"{where}: args must map strings to strings")
    print(f"# {path}: {len(events)} trace events OK")


def check_number_or_null(value):
    return value is None or (isinstance(value, (int, float))
                             and not isinstance(value, bool))


def check_bench(path, doc, fail):
    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    version = doc.get("schema_version")
    if not isinstance(version, int) or version < 3:
        return fail(path, f"schema_version is {version!r}, want int >= 3")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        return fail(path, 'missing "metrics" object (schema v3)')
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            fail(path, f"metrics.{section} missing or not an object")
    series = 0
    for name, value in metrics.get("counters", {}).items():
        series += 1
        if not SERIES_RE.match(name):
            fail(path, f"counter name {name!r} is not prometheus-legal")
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            fail(path, f"counter {name}: {value!r}, want int >= 0")
    for name, value in metrics.get("gauges", {}).items():
        series += 1
        if not SERIES_RE.match(name):
            fail(path, f"gauge name {name!r} is not prometheus-legal")
        if not check_number_or_null(value):
            fail(path, f"gauge {name}: {value!r}, want number or null")
    for name, summary in metrics.get("histograms", {}).items():
        series += 1
        if not SERIES_RE.match(name):
            fail(path, f"histogram name {name!r} is not prometheus-legal")
        if not isinstance(summary, dict) or set(summary) != HISTOGRAM_KEYS:
            fail(path, f"histogram {name}: keys {sorted(summary)!r}, "
                       f"want {sorted(HISTOGRAM_KEYS)!r}")
            continue
        if not all(check_number_or_null(v) for v in summary.values()):
            fail(path, f"histogram {name}: non-numeric summary value")
        if summary["count"] == 0 and summary["max"] != 0:
            fail(path, f"histogram {name}: empty but max != 0")
    print(f"# {path}: schema v{version}, {series} metric series OK")


def main(argv):
    if len(argv) < 3 or argv[1] not in ("trace", "bench"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    checker = check_trace if argv[1] == "trace" else check_bench
    violations = []

    def fail(path, message):
        violations.append(f"{path}: {message}")

    for path in argv[2:]:
        try:
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            fail(path, f"unreadable or invalid JSON: {error}")
            continue
        checker(path, doc, fail)

    for line in violations:
        print(f"FAIL {line}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

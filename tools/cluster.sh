#!/usr/bin/env bash
# 16-node localhost cluster harness for the emerged daemon.
#
# Boots one seed daemon plus N-1 joiners on 127.0.0.1, waits for the Chord
# ring to converge (successor-walk closes over all N nodes), submits one
# timed-release session with T seconds to emergence, stays up as the
# receiver, and asserts
#   * the secret emerges within TOLERANCE seconds of tr,
#   * no daemon counted a single malformed wire frame, and
#   * every node answers a metrics query over the wire (status --metrics).
#
# Usage: tools/cluster.sh [BUILD_DIR] [NODES] [T_SECONDS] [TOLERANCE]
# Exit 0 on success. Daemon logs live in $LOG_DIR (kept on failure so CI
# can upload them).
set -u

BUILD_DIR="${1:-build}"
NODES="${2:-16}"
T_SECONDS="${3:-20}"
TOLERANCE="${4:-3}"
BASE_PORT="${BASE_PORT:-42100}"
EMERGED="$BUILD_DIR/tools/emerged"
LOG_DIR="${LOG_DIR:-$BUILD_DIR/cluster-logs}"
SEED_ADDR="127.0.0.1:$BASE_PORT"

if [ ! -x "$EMERGED" ]; then
  echo "cluster.sh: $EMERGED not built (cmake --build $BUILD_DIR --target emerged)" >&2
  exit 2
fi

mkdir -p "$LOG_DIR"
rm -f "$LOG_DIR"/node-*.log "$LOG_DIR"/submit.log "$LOG_DIR"/status.log

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

echo "cluster.sh: starting $NODES daemons on 127.0.0.1:$BASE_PORT+"
for i in $(seq 0 $((NODES - 1))); do
  port=$((BASE_PORT + i))
  args=(serve --listen="127.0.0.1:$port" --name="node-$i" \
        --rng-seed=$((1000 + i)) --stabilize-interval=0.25 \
        --repair-interval=1.0 --status-interval=5)
  if [ "$i" -ne 0 ]; then
    args+=(--seed-node="$SEED_ADDR")
  fi
  "$EMERGED" "${args[@]}" >"$LOG_DIR/node-$i.log" 2>&1 &
  PIDS+=($!)
done

echo "cluster.sh: waiting for the ring to converge"
converged=0
for attempt in $(seq 1 60); do
  sleep 1
  if "$EMERGED" status --daemon="$SEED_ADDR" --expect-ring="$NODES" \
      >"$LOG_DIR/status.log" 2>&1; then
    converged=1
    echo "cluster.sh: ring of $NODES converged after ${attempt}s"
    break
  fi
done
if [ "$converged" -ne 1 ]; then
  echo "cluster.sh: FAIL - ring did not converge; last walk:" >&2
  cat "$LOG_DIR/status.log" >&2
  exit 1
fi

echo "cluster.sh: submitting a session with T=${T_SECONDS}s"
if ! "$EMERGED" submit --daemon="$SEED_ADDR" \
    --message="the emerged cluster secret" --T="$T_SECONDS" \
    --k=2 --l=3 --scheme=joint --await --tolerance="$TOLERANCE" \
    | tee "$LOG_DIR/submit.log"; then
  echo "cluster.sh: FAIL - submit/emergence failed; see $LOG_DIR" >&2
  exit 1
fi

echo "cluster.sh: verifying a clean ring and a metrics answer from every node"
if ! "$EMERGED" status --daemon="$SEED_ADDR" --expect-ring="$NODES" \
    --expect-clean --metrics | tee "$LOG_DIR/status.log"; then
  echo "cluster.sh: FAIL - post-run ring check; see $LOG_DIR" >&2
  exit 1
fi

echo "cluster.sh: OK - secret emerged on time, ring clean"
exit 0

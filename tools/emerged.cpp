// emerged — the runnable node daemon and its operator commands.
//
// One binary, three subcommands, all speaking the same wire protocol
// (src/service/wire.hpp) on a WallClock + UdpSocket:
//
//   emerged serve  --listen=IP:PORT [--seed-node=IP:PORT] [flags]
//       Runs one Chord node + holder engine (service::NodeDaemon) until
//       SIGINT/SIGTERM. Every flag comes from add_daemon_options — the
//       daemon's one config surface — so --help IS the authoritative list.
//
//   emerged submit --daemon=IP:PORT --message=TEXT [--await] [flags]
//       Submits a timed-release session through a running daemon; protocol
//       shape flags (k, l, T, scheme, carriers, threshold) come from
//       add_protocol_options, the same table the scenario grammar uses.
//       With --await the command stays up as the receiver and exits 0 only
//       if the secret emerges within --tolerance of tr.
//
//   emerged status --daemon=IP:PORT [--expect-ring=N] [--expect-clean]
//       Asks one daemon for its status, then walks successor links all the
//       way around the ring printing each node. --expect-ring fails the
//       command unless the walk closes with exactly N distinct nodes;
//       --expect-clean fails it if any node counted a malformed frame;
//       --metrics additionally queries every walked node's metrics
//       snapshot over the wire and fails unless all of them answer.
//
// Observability: serve takes --metrics-interval=S (periodic prometheus
// text dump on stdout), --trace-out=PATH and --trace-sample=RATE (session
// lifecycle events appended as JSONL, sampled deterministically on the
// session nonce).
//
// tools/cluster.sh composes these into the 16-node localhost harness.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/options.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/udp_socket.hpp"
#include "sim/wall_clock.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace emergence;          // NOLINT(build/namespaces)
using namespace emergence::service; // NOLINT(build/namespaces)

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

/// A stable, unique default identity: hostname:port. Distinguishes
/// same-image containers (unique hostnames) and same-host daemons (unique
/// ports) without requiring --name.
std::string default_name(const Endpoint& listen) {
  char host[256] = "localhost";
  (void)::gethostname(host, sizeof(host) - 1);
  return std::string(host) + ":" + std::to_string(listen.port);
}

int usage() {
  std::cerr
      << "usage: emerged <serve|submit|status> [--key=value ...]\n"
         "       emerged <subcommand> --help   lists every flag\n";
  return 2;
}

// -- serve --------------------------------------------------------------------

int cmd_serve(int argc, char** argv) {
  DaemonConfig config;
  double status_interval = 10.0;
  double metrics_interval = 0.0;
  std::string trace_out;
  double trace_sample = 1.0;
  bool help = false;
  OptionTable table;
  add_daemon_options(table, config);
  table.add_real("status-interval",
                 "seconds between status lines on stdout (0 = quiet)",
                 &status_interval);
  table.add_real("metrics-interval",
                 "seconds between prometheus text dumps on stdout (0 = off)",
                 &metrics_interval);
  table.add_string("trace-out", "PATH",
                   "append daemon trace events as JSONL to this file",
                   &trace_out);
  table.add_real("trace-sample",
                 "fraction of sessions traced (keyed on the session nonce)",
                 &trace_sample);
  table.add_flag("help", "print this flag list", &help);

  const auto positional = table.parse_cli(argc, argv, 2);
  if (help) {
    std::cout << "emerged serve: run one node daemon\n" << table.help();
    return 0;
  }
  require(positional.empty(), "serve takes no positional arguments");
  require(config.listen.valid(), "serve requires --listen=IP:PORT");

  sim::WallClock clock;
  UdpSocket socket(config.listen);
  config.listen = socket.local_endpoint();  // resolve a port-0 bind
  // Containers that all listen on 0.0.0.0:4100 must not share an identity.
  if (config.name.empty()) config.name = default_name(config.listen);
  NodeDaemon daemon(clock, socket, config);

  // Optional JSONL trace sink: the daemon records wall-clock session events
  // (package_received / slot_processed / deliver / submit_accepted) onto one
  // tracer shard, drained incrementally so a long-lived daemon never grows
  // an unbounded buffer.
  std::optional<obs::Tracer> tracer;
  std::ofstream trace_os;
  if (!trace_out.empty()) {
    tracer.emplace(config.rng_seed, trace_sample);
    trace_os.open(trace_out, std::ios::app);
    require(static_cast<bool>(trace_os),
            "serve: cannot open --trace-out file " + trace_out);
    daemon.set_trace(tracer->new_shard());
  }
  daemon.start();

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::cout << "emerged: " << daemon.self().id.to_hex().substr(0, 12) << " on "
            << config.listen.to_string()
            << (config.seed ? " joining via " + config.seed->to_string()
                            : " creating a new ring")
            << std::endl;

  double next_status =
      status_interval > 0.0 ? clock.now() + status_interval : 0.0;
  double next_metrics =
      metrics_interval > 0.0 ? clock.now() + metrics_interval : 0.0;
  while (g_stop == 0) {
    clock.fire_due();
    double wait = 0.2;
    if (auto until = clock.seconds_until_next())
      wait = std::min(wait, *until);
    socket.poll(wait);
    clock.fire_due();
    if (status_interval > 0.0 && clock.now() >= next_status) {
      next_status = clock.now() + status_interval;
      const StatusReply s = daemon.local_status();
      const DaemonReport& r = daemon.report();
      std::cout << "status successors=" << s.successors.size()
                << " predecessor=" << (s.has_predecessor ? 1 : 0)
                << " store=" << s.store_size << " slots=" << s.holder_slots
                << " deliveries=" << s.deliveries
                << " packages_rx=" << r.packages_received
                << " stuck=" << r.holders_stuck
                << " malformed=" << s.malformed_frames << std::endl;
    }
    if (metrics_interval > 0.0 && clock.now() >= next_metrics) {
      next_metrics = clock.now() + metrics_interval;
      obs::MetricsRegistry registry;
      daemon.publish_metrics(registry);
      std::cout << "# metrics t=" << std::fixed << clock.now() << "\n"
                << registry.to_prometheus() << std::flush;
    }
    if (tracer.has_value() && tracer->event_count() > 0) {
      tracer->drain_jsonl(trace_os);
      trace_os.flush();
    }
  }
  std::cout << "emerged: stopping" << std::endl;
  return 0;
}

// -- shared client plumbing ---------------------------------------------------

struct ClientWorld {
  sim::WallClock clock;
  UdpSocket socket;
  WireClient client;

  ClientWorld(const Endpoint& daemon, const Endpoint& bind)
      : socket(bind),
        client(clock, socket, WireClient::Options{daemon, 0.5, 8, 10.0},
               [this]() {
                 clock.fire_due();
                 double wait = 0.05;
                 if (auto until = clock.seconds_until_next())
                   wait = std::min(wait, *until);
                 socket.poll(wait);
                 return true;
               }) {}
};

// -- submit -------------------------------------------------------------------

int cmd_submit(int argc, char** argv) {
  api::SubmitRequest request;
  std::string daemon_text;
  std::string message_text = "the self-emerging secret";
  std::string bind_text = "127.0.0.1:0";
  bool await_emergence = false;
  double tolerance = 2.0;
  bool help = false;

  OptionTable table;
  workload::add_protocol_options(table, request.scheme, request.shape,
                       request.carriers_n, request.threshold_m,
                       request.emerging_time);
  table.add_string("daemon", "IP:PORT", "daemon that executes the submit",
                   &daemon_text);
  table.add_string("message", "TEXT", "plaintext to self-emerge",
                   &message_text);
  table.add_string("bind", "IP:PORT", "local receiver endpoint", &bind_text);
  table.add_real("assembly-delay", "holder share-assembly delay (seconds)",
                 &request.assembly_delay);
  table.add_u64("seed", "sender-side DRBG seed", &request.seed);
  table.add_flag("await", "stay up as the receiver until the secret emerges",
                 &await_emergence);
  table.add_real("tolerance",
                 "max seconds past tr the emergence may arrive (--await)",
                 &tolerance);
  table.add_flag("help", "print this flag list", &help);

  const auto positional = table.parse_cli(argc, argv, 2);
  if (help) {
    std::cout << "emerged submit: run one timed-release session\n"
              << table.help();
    return 0;
  }
  require(positional.empty(), "submit takes no positional arguments");
  require(!daemon_text.empty(), "submit requires --daemon=IP:PORT");

  request.message = Bytes(message_text.begin(), message_text.end());
  ClientWorld world(resolve_endpoint(daemon_text), resolve_endpoint(bind_text));

  const api::SubmitReceipt receipt = world.client.submit(request);
  std::cout << "submitted nonce=" << receipt.session_nonce
            << " start=" << std::fixed << receipt.start_time
            << " release=" << receipt.release_time << std::endl;
  if (!await_emergence) return 0;

  const double budget =
      receipt.release_time - world.clock.now() + tolerance + 1.0;
  const auto event =
      world.client.await_event(receipt.session_nonce, budget);
  if (!event.has_value()) {
    std::cerr << "FAIL: no emergence within " << budget << "s" << std::endl;
    return 1;
  }
  const double lag = event->delivery_time - event->release_time;
  const std::string secret(event->secret.begin(), event->secret.end());
  std::cout << "emerged nonce=" << event->session_nonce << " lag=" << lag
            << "s secret=\"" << secret << "\"" << std::endl;
  if (secret != message_text) {
    std::cerr << "FAIL: secret does not match the submitted message"
              << std::endl;
    return 1;
  }
  if (lag < 0.0 || lag > tolerance) {
    std::cerr << "FAIL: delivery lag " << lag << "s outside [0, " << tolerance
              << "]" << std::endl;
    return 1;
  }
  return 0;
}

// -- status -------------------------------------------------------------------

int cmd_status(int argc, char** argv) {
  std::string daemon_text;
  std::string bind_text = "127.0.0.1:0";
  std::size_t expect_ring = 0;
  bool expect_clean = false;
  bool metrics = false;
  bool help = false;

  OptionTable table;
  table.add_string("daemon", "IP:PORT", "any daemon in the ring",
                   &daemon_text);
  table.add_string("bind", "IP:PORT", "local endpoint for the queries",
                   &bind_text);
  table.add_size("expect-ring",
                 "fail unless the successor walk closes with exactly N nodes",
                 &expect_ring);
  table.add_flag("expect-clean",
                 "fail if any node counted a malformed frame", &expect_clean);
  table.add_flag("metrics",
                 "also query every walked node's metrics snapshot "
                 "(fails unless every node answers)",
                 &metrics);
  table.add_flag("help", "print this flag list", &help);

  const auto positional = table.parse_cli(argc, argv, 2);
  if (help) {
    std::cout << "emerged status: inspect a ring\n" << table.help();
    return 0;
  }
  require(positional.empty(), "status takes no positional arguments");
  require(!daemon_text.empty(), "status requires --daemon=IP:PORT");

  ClientWorld world(resolve_endpoint(daemon_text), resolve_endpoint(bind_text));

  // Walk successor links until the ring closes (or an obvious bound).
  std::vector<StatusReply> ring;
  std::set<std::string> seen;
  std::uint64_t malformed_total = 0;
  Endpoint cursor = resolve_endpoint(daemon_text);
  std::size_t metrics_answers = 0;
  for (std::size_t i = 0; i < 4096; ++i) {
    const StatusReply s = world.client.status_of(cursor, 5.0);
    if (!seen.insert(s.self.id.to_hex()).second) break;  // ring closed
    ring.push_back(s);
    malformed_total += s.malformed_frames;
    std::cout << s.self.id.to_hex().substr(0, 12) << " @ "
              << s.self.addr.to_string()
              << " succ=" << s.successors.size()
              << " pred=" << (s.has_predecessor ? 1 : 0)
              << " store=" << s.store_size << " slots=" << s.holder_slots
              << " deliveries=" << s.deliveries
              << " malformed=" << s.malformed_frames << std::endl;
    if (metrics) {
      // A node that answers status but not metrics is a FAIL: the throw
      // propagates to main's handler and exits nonzero.
      const MetricsResponse m = world.client.metrics_of(s.self.addr, 5.0);
      ++metrics_answers;
      std::cout << "  metrics series=" << m.entries.size();
      for (const auto& [key, value] : m.entries) {
        if (key == "emergence_daemon_deliveries_total" ||
            key == "emergence_daemon_packages_received_total" ||
            key == "emergence_store_size") {
          std::cout << " " << key << "=" << value;
        }
      }
      std::cout << std::endl;
    }
    if (s.successors.empty()) break;
    cursor = s.successors.front().addr;
  }
  std::cout << "ring size " << ring.size() << ", malformed frames "
            << malformed_total << std::endl;
  if (metrics) {
    std::cout << "metrics answered by " << metrics_answers << "/"
              << ring.size() << " nodes" << std::endl;
  }

  if (expect_ring != 0 && ring.size() != expect_ring) {
    std::cerr << "FAIL: expected a ring of " << expect_ring << ", walked "
              << ring.size() << std::endl;
    return 1;
  }
  if (expect_clean && malformed_total != 0) {
    std::cerr << "FAIL: " << malformed_total << " malformed frames counted"
              << std::endl;
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "serve") return cmd_serve(argc, argv);
    if (command == "submit") return cmd_submit(argc, argv);
    if (command == "status") return cmd_status(argc, argv);
    if (command == "--help" || command == "-h" || command == "help")
      return usage();
  } catch (const emergence::Error& e) {
    std::cerr << "emerged " << command << ": " << e.what() << std::endl;
    return 1;
  }
  return usage();
}
